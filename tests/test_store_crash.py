"""Crash-recovery property tests for the circuit store.

The property: a writer killed with SIGKILL mid-append — at injected,
randomized append offsets, or externally at an arbitrary moment —
never corrupts the store *silently*.  After reopening, every damaged
line is detected and quarantined by ``verify``/``repair``, every
record written before the kill survives (appends are fsynced), and
every surviving record replays bit-identically and simulation-verifies
against its canonical key.  Finally, a cache service warmed from the
recovered store answers from cache, byte-identically, without search.
"""

import os
import signal
import subprocess
import sys

from repro.functions.permutation import Permutation
from repro.io.real_format import dump_real, load_real
from repro.obs import MetricsRegistry
from repro.store import CircuitStore, SynthesisService
from repro.synth.options import SynthesisOptions

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

#: Appends random 3-line circuits to the store at argv[1] until argv[3]
#: records are stored (argv[2] seeds the RNG), acknowledging each
#: *durable* append on stdout.  Faults arrive via RMRLS_STORE_FAULTS.
WRITER = """
import random, sys
from repro.circuits.circuit import Circuit
from repro.gates.toffoli import ToffoliGate
from repro.store import CircuitStore, canonicalize

root, seed, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
rng = random.Random(seed)
store = CircuitStore(root)
written = 0
while written < count:
    gates = []
    for _ in range(rng.randint(1, 6)):
        target = rng.randrange(3)
        controls = rng.randrange(8) & ~(1 << target)
        gates.append(ToffoliGate(controls, target))
    circuit = Circuit(3, gates)
    record, stored = store.put(
        canonicalize(circuit.to_permutation()), circuit,
        provenance={"n": written},
    )
    if stored:
        written += 1
        print(written, flush=True)
store.close()
print("done", flush=True)
"""


def spawn_writer(root, seed, count, faults=None, **popen_kwargs):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("RMRLS_STORE_FAULTS", None)
    if faults:
        env["RMRLS_STORE_FAULTS"] = faults
    return subprocess.Popen(
        [sys.executable, "-c", WRITER, str(root), str(seed), str(count)],
        env=env, stdout=subprocess.PIPE, text=True, **popen_kwargs,
    )


def assert_no_silent_corruption(root):
    """The recovery invariant: damage is detected, survivors are real."""
    store = CircuitStore(str(root))
    shallow = store.verify()
    # Whatever the kill tore is *reported*, never served: torn or
    # half-fsynced lines may exist, checksum-valid-but-wrong ones may
    # not, and every intact record replays exactly.
    deep = store.verify(deep=True)
    assert deep["replay_failures"] == []
    store.repair()
    repaired = store.verify(deep=True)
    assert repaired["ok"], repaired
    for key in store.keys():
        record = store.get(key)
        circuit = load_real(record.real)
        assert dump_real(circuit) == record.real  # bit-identical replay
        assert circuit.gate_count() == record.gates
        assert circuit.implements(
            Permutation(circuit.to_permutation().images)
        )
    survivors = len(store)
    store.close()
    return survivors, shallow["problems"]


class TestSigkillMidAppend:
    def test_randomized_kill_offsets(self, tmp_path, rng):
        for trial in range(3):
            offset = rng.randint(2, 10)
            root = tmp_path / f"store-{trial}"
            writer = spawn_writer(root, seed=trial, count=50,
                                  faults=f"sigkill@{offset}")
            acknowledged = sum(
                1 for line in writer.stdout if line.strip().isdigit()
            )
            assert writer.wait(timeout=60) == -signal.SIGKILL
            # Every acknowledged append was fsynced before the kill.
            survivors, problems = assert_no_silent_corruption(root)
            assert survivors >= acknowledged == offset - 1
            # The SIGKILL fault fires after half the line hit the file,
            # so the tear itself must have been seen and quarantined.
            assert problems.get("torn", 0) == 1

    def test_external_kill_between_appends(self, tmp_path, rng):
        root = tmp_path / "store"
        writer = spawn_writer(root, seed=7, count=10_000)
        acknowledged = 0
        stop_after = rng.randint(3, 15)
        for line in writer.stdout:
            if line.strip().isdigit():
                acknowledged += 1
            if acknowledged >= stop_after:
                writer.kill()
                break
        assert writer.wait(timeout=60) == -signal.SIGKILL
        survivors, _problems = assert_no_silent_corruption(root)
        assert survivors >= acknowledged

    def test_clean_writer_leaves_clean_store(self, tmp_path):
        writer = spawn_writer(tmp_path / "store", seed=1, count=8)
        assert writer.wait(timeout=120) == 0
        writer.stdout.close()
        store = CircuitStore(str(tmp_path / "store"), read_only=True)
        report = store.verify(deep=True)
        assert report["ok"] and report["records"] >= 8


class TestWarmCacheAfterRecovery:
    def test_recovered_store_serves_bit_identical_hits(self, tmp_path, rng):
        root = tmp_path / "store"
        writer = spawn_writer(root, seed=11, count=50, faults="sigkill@6")
        writer.stdout.read()
        assert writer.wait(timeout=60) == -signal.SIGKILL

        store = CircuitStore(str(root))
        store.repair()
        assert store.verify(deep=True)["ok"]
        registry = MetricsRegistry()
        service = SynthesisService(
            store=store, metrics=registry,
            options=SynthesisOptions(dedupe_states=True, max_steps=40_000),
            batch_window_seconds=0.01,
        )
        try:
            for key in store.keys():
                record = store.get(key)
                spec = list(load_real(record.real).to_permutation().images)
                response = service.synthesize(spec)
                assert response["status"] == "ok"
                assert response["cache"] == "hit"
                assert response["key"] == key
                assert response["real"] == record.real  # byte-identical
            metrics = registry.as_dict()
            assert metrics["store_cache_hits_total"]["value"] == len(store)
            assert "store_cache_misses_total" not in metrics  # no search
        finally:
            service.close()
