"""Hot-op counters: the slots object, global aggregation, and the
search-loop instrumentation that feeds them."""

import pytest

from repro.functions.permutation import Permutation
from repro.obs import MetricsObserver, MetricsRegistry
from repro.perf.hotops import (
    HOT_OP_FIELDS,
    HotOpCounters,
    global_counters,
    reset_global,
    snapshot_global,
)
from repro.synth.rmrls import synthesize


class TestHotOpCounters:
    def test_starts_at_zero(self):
        counters = HotOpCounters()
        assert counters.total() == 0
        assert all(value == 0 for value in counters.as_dict().values())

    def test_fields_match_slots(self):
        counters = HotOpCounters()
        assert tuple(counters.as_dict()) == HOT_OP_FIELDS

    def test_merge_adds(self):
        first = HotOpCounters()
        first.queue_pushes = 3
        second = HotOpCounters()
        second.queue_pushes = 4
        second.dedupe_hits = 1
        first.merge(second)
        assert first.queue_pushes == 7
        assert first.dedupe_hits == 1

    def test_merge_dict_ignores_unknown_keys(self):
        counters = HotOpCounters()
        counters.merge_dict({"queue_pops": 2, "not_a_counter": 99})
        assert counters.queue_pops == 2
        assert counters.total() == 2

    def test_diff(self):
        earlier = HotOpCounters()
        earlier.substitutions_applied = 5
        later = earlier.copy()
        later.substitutions_applied = 8
        later.queue_pops = 2
        delta = later.diff(earlier)
        assert delta.substitutions_applied == 3
        assert delta.queue_pops == 2

    def test_copy_is_independent(self):
        counters = HotOpCounters()
        counters.queue_pops = 1
        clone = counters.copy()
        clone.queue_pops = 10
        assert counters.queue_pops == 1

    def test_equality(self):
        first = HotOpCounters()
        second = HotOpCounters()
        assert first == second
        second.dedupe_probes = 1
        assert first != second

    def test_publish_skips_zeros(self):
        counters = HotOpCounters()
        counters.queue_pushes = 5
        registry = MetricsRegistry()
        counters.publish(registry)
        assert registry.counter("hotop_queue_pushes").value == 5
        assert registry.get("hotop_dedupe_hits") is None


class TestGlobalCounters:
    def test_snapshot_is_isolated(self):
        snapshot = snapshot_global()
        global_counters().queue_pops += 1
        assert snapshot_global().queue_pops == snapshot.queue_pops + 1
        # the earlier snapshot did not move
        assert snapshot.queue_pops != global_counters().queue_pops

    def test_reset(self):
        global_counters().queue_pops += 1
        reset_global()
        assert snapshot_global().total() == 0


class TestSearchInstrumentation:
    @pytest.fixture
    def result(self):
        return synthesize(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]).to_pprm(),
            dedupe_states=True,
        )

    def test_stats_carry_hot_ops(self, result):
        hot = result.stats.hot_ops
        assert hot["substitutions_applied"] > 0
        assert hot["queue_pops"] > 0
        assert hot["queue_pushes"] >= hot["queue_pops"] > 0
        assert hot["pprm_terms_in"] > 0
        assert hot["pprm_terms_out"] > 0
        assert hot["dedupe_probes"] >= hot["dedupe_hits"]

    def test_hot_ops_in_as_dict(self, result):
        assert "hot_ops" in result.stats.as_dict()

    def test_global_counters_metered(self):
        before = snapshot_global()
        result = synthesize(Permutation([1, 0, 3, 2, 5, 7, 4, 6]).to_pprm())
        delta = snapshot_global().diff(before)
        assert delta.as_dict() == result.stats.hot_ops

    def test_restart_counters(self):
        # A spec hard enough to trigger restarts under a tiny budget.
        result = synthesize(
            Permutation([7, 0, 1, 2, 3, 4, 5, 6]).to_pprm(),
            restart_steps=3,
            max_steps=40,
        )
        if result.stats.restarts:
            assert result.stats.hot_ops["restart_reseeds"] == (
                result.stats.restarts
            )

    def test_metrics_observer_publishes_hotops(self):
        registry = MetricsRegistry()
        result = synthesize(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]).to_pprm(),
            observers=(MetricsObserver(registry),),
        )
        assert (
            registry.counter("hotop_substitutions_applied").value
            == result.stats.hot_ops["substitutions_applied"]
        )
