"""Failure taxonomy, task identities, and the retry ladder."""

import pytest

from repro.harness import (
    DEFAULT_RETRYABLE,
    FAILURE_STATUSES,
    STATUSES,
    RetryPolicy,
    Task,
    TaskOutcome,
    permutation_task,
    probe_task,
    status_from_finish_reason,
    task_fingerprint,
)


class TestTaxonomy:
    def test_statuses_cover_the_issue_taxonomy(self):
        assert set(STATUSES) == {
            "ok", "unsolved", "timeout", "oom", "crash", "hang",
            "unsound", "interrupted",
        }
        assert "ok" not in FAILURE_STATUSES

    @pytest.mark.parametrize(
        "reason,solved,expected",
        [
            ("solved", True, "ok"),
            ("identity", True, "ok"),
            ("timeout", False, "timeout"),
            ("memory_limit", False, "oom"),
            ("interrupted", False, "interrupted"),
            ("queue_exhausted", False, "unsolved"),
            ("step_limit", False, "unsolved"),
        ],
    )
    def test_finish_reason_mapping(self, reason, solved, expected):
        assert status_from_finish_reason(reason, solved) == expected

    def test_outcome_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            TaskOutcome(task_id="x", status="exploded")

    def test_outcome_round_trips_through_dict(self):
        outcome = TaskOutcome(
            task_id="abc", status="timeout", attempts=3,
            error="deadline", elapsed_seconds=1.5,
            meta={"index": 4}, extra={"raw_gate_count": 7},
        )
        clone = TaskOutcome.from_dict(outcome.as_dict())
        assert clone == outcome
        assert clone.failed and not clone.ok


class TestTaskIdentity:
    def test_fingerprint_is_deterministic(self):
        a = task_fingerprint("probe", {"behavior": "ok"}, {}, "ns")
        b = task_fingerprint("probe", {"behavior": "ok"}, {}, "ns")
        assert a == b and len(a) == 16

    def test_fingerprint_depends_on_all_inputs(self):
        base = task_fingerprint("probe", {"behavior": "ok"}, {}, "ns")
        assert task_fingerprint("probe", {"behavior": "ok"}, {}, "other") != base
        assert task_fingerprint("pprm", {"behavior": "ok"}, {}, "ns") != base
        assert (
            task_fingerprint("probe", {"behavior": "raise"}, {}, "ns") != base
        )
        assert (
            task_fingerprint("probe", {"behavior": "ok"}, {"max_steps": 5},
                             "ns") != base
        )

    def test_meta_does_not_enter_the_id(self):
        one = probe_task("ok", meta={"index": 1})
        two = probe_task("ok", meta={"index": 2})
        assert one.task_id == two.task_id

    def test_same_spec_same_id_across_processes_of_generation(self):
        first = permutation_task([1, 0, 3, 2], namespace="t")
        second = permutation_task((1, 0, 3, 2), namespace="t")
        assert first.task_id == second.task_id

    def test_task_label_prefers_meta(self):
        task = Task(kind="probe", payload={}, meta={"label": "probe:x"})
        assert task.label() == "probe:x"
        assert Task(kind="probe", payload={}).label()


class TestRetryPolicy:
    def test_defaults_exclude_unsound_and_interrupted(self):
        assert "unsound" not in DEFAULT_RETRYABLE
        assert "interrupted" not in DEFAULT_RETRYABLE

    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry("crash", 1)
        assert policy.should_retry("crash", 2)
        assert not policy.should_retry("crash", 3)
        assert not policy.should_retry("unsound", 1)
        assert not RetryPolicy().should_retry("crash", 1)

    def test_escalation_is_stateless_from_base(self):
        policy = RetryPolicy(max_retries=3, step_factor=2.0,
                             time_factor=1.5, widen_greedy=2)
        base = {"max_steps": 100, "time_limit": 10.0, "greedy_k": 3}
        assert policy.escalate_options(base, 1) == base
        second = policy.escalate_options(base, 2)
        assert second == {"max_steps": 200, "time_limit": 15.0, "greedy_k": 5}
        third = policy.escalate_options(base, 3)
        assert third["max_steps"] == 400
        assert third["time_limit"] == pytest.approx(22.5)
        assert third["greedy_k"] == 7
        # base never mutated
        assert base == {"max_steps": 100, "time_limit": 10.0, "greedy_k": 3}

    def test_none_budgets_stay_none(self):
        policy = RetryPolicy(max_retries=1)
        options = policy.escalate_options(
            {"max_steps": None, "time_limit": None, "greedy_k": None}, 3
        )
        assert options["max_steps"] is None
        assert options["time_limit"] is None
        assert options["greedy_k"] is None
        assert policy.escalate_wall(None, 3) is None
        assert policy.escalate_mem(None, 3) is None

    def test_wall_and_mem_escalate(self):
        policy = RetryPolicy(time_factor=2.0, mem_factor=2.0)
        assert policy.escalate_wall(4.0, 1) == 4.0
        assert policy.escalate_wall(4.0, 3) == 16.0
        assert policy.escalate_mem(100, 2) == 200

    def test_backoff_deterministic_and_jittered(self):
        policy = RetryPolicy(backoff_seconds=1.0, backoff_jitter=0.5)
        first = policy.backoff("task-a", 2)
        assert first == policy.backoff("task-a", 2)
        assert 0.75 <= first <= 1.25
        # doubles per attempt, decorrelated across tasks
        assert policy.backoff("task-a", 3) > first
        assert policy.backoff("task-b", 2) != first
        assert policy.backoff("task-a", 1) == 0.0
        assert RetryPolicy().backoff("task-a", 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(step_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.5)
