"""Tests for the Tables V-VII random circuit generator."""

import random

import pytest

from repro.circuits.random_circuits import (
    random_circuit,
    random_circuit_specification,
)
from repro.gates.library import GT, NCT


class TestRandomCircuit:
    def test_gate_count(self, rng):
        circuit = random_circuit(6, 15, rng)
        assert circuit.gate_count() == 15
        assert circuit.num_lines == 6

    def test_zero_gates(self, rng):
        assert random_circuit(3, 0, rng).gate_count() == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_circuit(3, -1, rng)

    def test_deterministic_per_seed(self):
        a = random_circuit(5, 10, random.Random(3))
        b = random_circuit(5, 10, random.Random(3))
        assert a == b

    def test_nct_library_respected(self, rng):
        circuit = random_circuit(8, 50, rng, NCT)
        assert circuit.max_gate_size() <= 3

    def test_gt_draws_large_gates(self, rng):
        sizes = {
            random_circuit(8, 1, rng, GT).gates[0].size for _ in range(200)
        }
        assert max(sizes) > 3


class TestSpecificationProtocol:
    def test_exact_gate_count(self, rng):
        spec, circuit = random_circuit_specification(5, 12, rng, exact=True)
        assert circuit.gate_count() == 12
        assert circuit.to_permutation() == spec

    def test_bounded_gate_count(self, rng):
        for _ in range(20):
            spec, circuit = random_circuit_specification(4, 9, rng)
            assert 1 <= circuit.gate_count() <= 9
            assert circuit.to_permutation() == spec

    def test_invalid_max_gates(self, rng):
        with pytest.raises(ValueError):
            random_circuit_specification(4, 0, rng)

    def test_specification_certifies_upper_bound(self, rng):
        """The generated circuit witnesses that the spec needs at most
        max_gates gates — the premise of Tables V-VII."""
        spec, circuit = random_circuit_specification(4, 6, rng, exact=True)
        assert circuit.gate_count() <= 6
        assert circuit.implements(spec)
