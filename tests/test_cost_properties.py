"""Property tests for the quantum-cost model."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.random_circuits import random_circuit
from repro.gates.library import GT

seeds = st.integers(0, 10_000)


def _circuit(seed: int, num_lines: int = 5) -> Circuit:
    rng = random.Random(seed)
    return random_circuit(num_lines, rng.randint(0, 10), rng, GT)


class TestCostProperties:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_cost_at_least_gate_count(self, seed):
        circuit = _circuit(seed)
        assert circuit.quantum_cost() >= circuit.gate_count()

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_widening_never_raises_cost(self, seed):
        """Extra idle lines can only unlock the cheaper realizations."""
        circuit = _circuit(seed)
        widened = circuit.widened(circuit.num_lines + 1)
        assert widened.quantum_cost() <= circuit.quantum_cost()

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_fredkin_expansion_preserves_cost(self, seed):
        """Fredkin gates are charged as their Toffoli expansion, so
        expanding them changes nothing."""
        rng = random.Random(seed)
        from repro.gates.fredkin import FredkinGate

        gates = []
        for _ in range(rng.randint(1, 4)):
            targets = rng.sample(range(5), 2)
            others = [i for i in range(5) if i not in targets]
            controls = 0
            for line in others:
                if rng.random() < 0.5:
                    controls |= 1 << line
            gates.append(FredkinGate(controls, *targets))
        circuit = Circuit(5, gates)
        assert (
            circuit.expand_fredkin().quantum_cost()
            == circuit.quantum_cost()
        )

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_concatenation_cost_additive(self, seed):
        first = _circuit(seed)
        second = _circuit(seed + 1)
        assert first.then(second).quantum_cost() == (
            first.quantum_cost() + second.quantum_cost()
        )

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_inverse_cost_equal(self, seed):
        circuit = _circuit(seed)
        assert circuit.inverse().quantum_cost() == circuit.quantum_cost()
