"""Tests for the in-process metrics registry and MetricsObserver."""

import pytest

from repro.functions.permutation import Permutation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class TestCounter:
    def test_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_as_dict(self):
        counter = Counter("c")
        counter.inc(2)
        assert counter.as_dict() == {"kind": "counter", "value": 2}


class TestGauge:
    def test_tracks_current_and_max(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7
        assert gauge.as_dict() == {"kind": "gauge", "value": 3, "max": 7}


class TestHistogram:
    def test_bucketing_inclusive_upper_bounds(self):
        histogram = Histogram("h", (0, 2, 4))
        for value in (-1, 0, 1, 2, 3, 4, 5, 100):
            histogram.observe(value)
        # buckets: <=0, <=2, <=4, overflow
        assert histogram.counts == [2, 2, 2, 2]
        assert histogram.count == 8
        assert histogram.minimum == -1
        assert histogram.maximum == 100

    def test_mean_and_dict(self):
        histogram = Histogram("h", (10,))
        histogram.observe(2)
        histogram.observe(4)
        data = histogram.as_dict()
        assert data["mean"] == pytest.approx(3.0)
        assert data["bounds"] == [10]
        assert data["counts"] == [2, 0]

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (3, 1))
        with pytest.raises(ValueError):
            Histogram("h", (1, 1))

    def test_render_contains_counts(self):
        histogram = Histogram("elim", (0, 1))
        histogram.observe(1)
        text = histogram.render()
        assert "elim" in text and "<= 1" in text


class TestRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is registry.histogram("h")

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", (1,))

    def test_histogram_needs_bounds_first_use(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        snapshot = registry.as_dict()
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"]["value"] == 1


class TestMetricsObserver:
    def test_synthesis_populates_search_metrics(self, fig1_spec):
        observer = MetricsObserver()
        result = synthesize(
            fig1_spec,
            SynthesisOptions(
                max_steps=5_000, dedupe_states=True, observers=(observer,)
            ),
        )
        assert result.solved
        registry = observer.registry
        assert registry.counter("search_steps").value == result.stats.steps
        assert (
            registry.counter("search_expansions").value
            == result.stats.nodes_expanded
        )
        # The root is not an accepted child, hence the -1.
        assert (
            registry.counter("search_children").value
            == result.stats.nodes_created - 1
        )
        elim = registry.get("elim")
        assert elim.count == result.stats.nodes_created - 1
        queue = registry.get("queue_size")
        assert queue.count > 0
        assert (
            registry.gauge("search_queue_size").max_value
            == result.stats.peak_queue_size
        )
        assert (
            registry.gauge("search_best_depth").value == result.gate_count
        )

    def test_children_per_expansion_flushed(self, fig1_spec):
        observer = MetricsObserver()
        result = synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(observer,)),
        )
        histogram = observer.registry.get("children_per_expansion")
        assert histogram.count == result.stats.nodes_expanded

    def test_prune_counters_match_stats(self, rng):
        images = list(range(16))
        rng.shuffle(images)
        observer = MetricsObserver()
        result = synthesize(
            Permutation(images),
            SynthesisOptions(
                max_steps=3_000, greedy_k=1, max_gates=12,
                dedupe_states=True, observers=(observer,),
            ),
        )
        registry = observer.registry
        greedy = registry.get("search_pruned_greedy")
        if greedy is not None:
            assert greedy.value == result.stats.children_pruned_greedy
        depth_total = sum(
            registry.counter(f"search_pruned_{reason}").value
            for reason in ("depth", "child_depth", "lower_bound")
            if registry.get(f"search_pruned_{reason}") is not None
        )
        assert depth_total == result.stats.nodes_pruned_depth


class TestMergeSnapshot:
    def test_counters_add(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        target = MetricsRegistry()
        target.counter("c").inc(2)
        target.merge_snapshot(source.as_dict())
        assert target.counter("c").value == 5

    def test_gauges_take_value_and_max_of_maxima(self):
        source = MetricsRegistry()
        source.gauge("g").set(10)
        source.gauge("g").set(4)
        target = MetricsRegistry()
        target.gauge("g").set(6)
        target.merge_snapshot(source.as_dict())
        assert target.gauge("g").value == 4
        assert target.gauge("g").max_value == 10

    def test_histograms_add_counts_and_extremes(self):
        bounds = (1, 4, 16)
        source = MetricsRegistry()
        source.histogram("h", bounds).observe(2)
        source.histogram("h").observe(100)
        target = MetricsRegistry()
        target.histogram("h", bounds).observe(0)
        target.merge_snapshot(source.as_dict())
        merged = target.histogram("h")
        assert merged.count == 3
        assert merged.total == 102
        assert merged.minimum == 0
        assert merged.maximum == 100
        assert merged.counts == [1, 1, 0, 1]

    def test_histogram_into_empty_registry(self):
        source = MetricsRegistry()
        source.histogram("h", (1, 2)).observe(1)
        target = MetricsRegistry()
        target.merge_snapshot(source.as_dict())
        assert target.histogram("h").count == 1

    def test_histogram_bounds_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("h", (1, 2)).observe(1)
        target = MetricsRegistry()
        target.histogram("h", (1, 2, 3))
        with pytest.raises(ValueError, match="bounds mismatch"):
            target.merge_snapshot(source.as_dict())

    def test_unknown_kind_rejected(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            target.merge_snapshot({"x": {"kind": "summary"}})

    def test_roundtrip_equivalence(self):
        # Merging a registry's snapshot into a fresh registry must
        # reproduce the original snapshot exactly.
        source = MetricsRegistry()
        source.counter("c").inc(7)
        source.gauge("g").set(3)
        source.histogram("h", (1, 10)).observe(5)
        target = MetricsRegistry()
        target.merge_snapshot(source.as_dict())
        assert target.as_dict() == source.as_dict()


class TestHotOpPublication:
    def test_hotop_counters_published_at_finish(self):
        observer = MetricsObserver()
        result = synthesize(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]),
            SynthesisOptions(observers=(observer,)),
        )
        registry = observer.registry
        for name, value in result.stats.hot_ops.items():
            if value:
                assert registry.counter(f"hotop_{name}").value == value
            else:
                assert registry.get(f"hotop_{name}") is None


class TestLabeledMetrics:
    def test_labeled_key_stable_order(self):
        from repro.obs.metrics import labeled_key

        assert labeled_key("m", None) == "m"
        assert (labeled_key("m", {"b": "2", "a": "1"})
                == 'm{a="1",b="2"}')

    def test_labeled_and_unlabeled_coexist(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(1)
        registry.counter("jobs", labels={"worker": "w0"}).inc(2)
        registry.counter("jobs", labels={"worker": "w1"}).inc(3)
        assert registry.counter("jobs").value == 1
        assert registry.counter("jobs", labels={"worker": "w0"}).value == 2
        assert registry.counter("jobs", labels={"worker": "w1"}).value == 3

    def test_unlabeled_snapshot_shape_unchanged(self):
        # Pre-label persisted snapshots must keep loading; unlabeled
        # entries therefore must not grow new keys.
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        assert registry.as_dict()["c"] == {"kind": "counter", "value": 1}

    def test_labeled_snapshot_roundtrip(self):
        source = MetricsRegistry()
        source.counter("c", labels={"worker": "w0"}).inc(4)
        source.gauge("g", labels={"slice": "1"}).set(7)
        target = MetricsRegistry()
        target.merge_snapshot(source.as_dict())
        assert target.as_dict() == source.as_dict()


class TestMergeProvenance:
    def test_merge_counts_per_source(self):
        source = MetricsRegistry()
        source.counter("c").inc(1)
        target = MetricsRegistry()
        target.merge_snapshot(source.as_dict(), source="slice0")
        target.merge_snapshot(source.as_dict(), source="slice0")
        target.merge_snapshot(source.as_dict(), source="slice1")
        target.merge_snapshot(source.as_dict())
        assert target.merge_counts == {
            "slice0": 2, "slice1": 1, "<anonymous>": 1,
        }

    def test_negative_counter_delta_rejected_with_source(self):
        target = MetricsRegistry()
        snapshot = {"c": {"kind": "counter", "value": -3}}
        with pytest.raises(ValueError) as excinfo:
            target.merge_snapshot(snapshot, source="slice2")
        message = str(excinfo.value)
        assert "slice2" in message
        assert "negative delta" in message
        assert "-3" in message

    def test_rejected_snapshot_applies_nothing(self):
        # The bad entry sorts after a good one; neither may land.
        target = MetricsRegistry()
        snapshot = {
            "a_good": {"kind": "counter", "value": 5},
            "z_bad": {"kind": "counter", "value": -1},
        }
        with pytest.raises(ValueError):
            target.merge_snapshot(snapshot, source="slice0")
        assert target.get("a_good") is None
        assert target.merge_counts == {}
