"""The resumable JSONL checkpoint ledger."""

import json

import pytest

from repro.harness import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    HarnessConfig,
    SweepLedger,
    TaskOutcome,
    probe_task,
    read_ledger,
    run_sweep,
)


def _outcome(task_id: str, status: str = "ok") -> TaskOutcome:
    return TaskOutcome(task_id=task_id, status=status, gate_count=3)


class TestLedgerRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        ledger = SweepLedger(str(tmp_path / "none.jsonl"), sweep="s")
        assert ledger.load() == {}

    def test_record_and_load(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb", "timeout"))
        loaded = SweepLedger(path, sweep="s").load()
        assert set(loaded) == {"aaa", "bbb"}
        assert loaded["bbb"].status == "timeout"

    def test_header_written_once_across_reopens(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("bbb"))
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header["schema"] == LEDGER_SCHEMA
        assert header["version"] == LEDGER_VERSION

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa", "crash"))
            ledger.record(_outcome("aaa", "ok"))
        assert SweepLedger(path, sweep="s").load()["aaa"].status == "ok"


class TestLedgerSafety:
    def test_wrong_sweep_name_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="table2:4v"):
            pass
        with pytest.raises(ValueError, match="belongs to sweep"):
            SweepLedger(path, sweep="table3:5v").load()

    def test_non_ledger_file_refused(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError, match="not a"):
            SweepLedger(str(path), sweep="s").load()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb"))
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-20])  # SIGKILL mid-write
        ledger = SweepLedger(path, sweep="s")
        assert set(ledger.load()) == {"aaa"}
        assert ledger.skipped_lines == 1

    def test_mid_file_corruption_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
        with open(path, "a") as handle:
            handle.write("garbage not json\n")
            handle.write('{"valid_json": "but not an outcome"}\n')
            handle.write(json.dumps(_outcome("bbb").as_dict()) + "\n")
        ledger = SweepLedger(path, sweep="s")
        loaded = ledger.load()
        # Every intact record survives, before and after the damage.
        assert set(loaded) == {"aaa", "bbb"}
        assert ledger.skipped_lines == 2
        # A clean reload resets the count.
        clean = str(tmp_path / "clean.jsonl")
        with SweepLedger(clean, sweep="s") as fresh:
            fresh.record(_outcome("ccc"))
        ledger.path = clean
        ledger.load()
        assert ledger.skipped_lines == 0

    def test_fsync_option_round_trips(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s", fsync=True) as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb"))
        loaded = SweepLedger(path, sweep="s").load()
        assert set(loaded) == {"aaa", "bbb"}

    def test_record_requires_open(self, tmp_path):
        ledger = SweepLedger(str(tmp_path / "ledger.jsonl"), sweep="s")
        with pytest.raises(RuntimeError):
            ledger.record(_outcome("aaa"))


class TestTerminalRecordsOnly:
    """Regression: resume must count terminal records only.

    A pool shutdown writes ``interrupted`` records for cancelled
    in-flight tasks; those tasks were *not* finished, so a resume must
    re-run them — and when a later run adds a terminal record for the
    same task id, only the terminal one may count.
    """

    def test_interrupted_record_is_not_replayed(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa", "interrupted"))
        ledger = SweepLedger(path, sweep="s")
        assert ledger.load() == {}
        assert ledger.interrupted_records == 1

    def test_interrupted_plus_terminal_counts_terminal_once(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa", "interrupted"))
            ledger.record(_outcome("aaa", "ok"))
            # The reverse order too: a cancellation raced in after the
            # retry's terminal record hit the ledger.
            ledger.record(_outcome("bbb", "ok"))
            ledger.record(_outcome("bbb", "interrupted"))
        ledger = SweepLedger(path, sweep="s")
        loaded = ledger.load()
        assert {task_id: o.status for task_id, o in loaded.items()} == {
            "aaa": "ok", "bbb": "ok",
        }
        assert ledger.interrupted_records == 2

    def test_resume_rexecutes_interrupted_and_does_not_double_count(
        self, tmp_path
    ):
        path = str(tmp_path / "ledger.jsonl")
        tasks = [
            probe_task("ok", namespace=f"resume-fix:{index}")
            for index in range(3)
        ]
        # A killed first run checkpointed task 0 and wrote a shutdown
        # cancellation for task 1.
        with SweepLedger(path, sweep="resume-fix") as ledger:
            ledger.record(
                TaskOutcome(task_id=tasks[0].task_id, status="ok")
            )
            ledger.record(
                TaskOutcome(
                    task_id=tasks[1].task_id, status="interrupted"
                )
            )
        report = run_sweep(
            "resume-fix", tasks, HarnessConfig(ledger_path=path)
        )
        # Tasks 1 and 2 executed, task 0 replayed; exactly 3 counted.
        assert report.completed == report.total == 3
        assert report.replayed == 1
        assert report.counts == {"ok": 3}
        # The ledger now holds interrupted + terminal for task 1; a
        # second resume replays all three, still without double counts.
        again = run_sweep(
            "resume-fix", tasks, HarnessConfig(ledger_path=path)
        )
        assert again.completed == again.total == 3
        assert again.replayed == 3
        assert again.counts == {"ok": 3}


class TestReadLedger:
    def test_reads_any_sweep_and_skips_interrupted(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="someone-elses-shard") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb", "interrupted"))
        parsed = read_ledger(path)
        assert parsed["header"]["sweep"] == "someone-elses-shard"
        assert set(parsed["outcomes"]) == {"aaa"}
        assert parsed["interrupted_records"] == 1

    def test_tolerates_torn_lines(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb"))
        content = open(path).read()
        open(path, "w").write(content[:-15])
        parsed = read_ledger(path)
        assert set(parsed["outcomes"]) == {"aaa"}
        assert parsed["skipped_lines"] == 1

    def test_rejects_non_ledger(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"schema": "something-else"}\n')
        with pytest.raises(ValueError, match="not a"):
            read_ledger(str(path))
