"""The resumable JSONL checkpoint ledger."""

import json

import pytest

from repro.harness import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    SweepLedger,
    TaskOutcome,
)


def _outcome(task_id: str, status: str = "ok") -> TaskOutcome:
    return TaskOutcome(task_id=task_id, status=status, gate_count=3)


class TestLedgerRoundTrip:
    def test_missing_file_loads_empty(self, tmp_path):
        ledger = SweepLedger(str(tmp_path / "none.jsonl"), sweep="s")
        assert ledger.load() == {}

    def test_record_and_load(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb", "timeout"))
        loaded = SweepLedger(path, sweep="s").load()
        assert set(loaded) == {"aaa", "bbb"}
        assert loaded["bbb"].status == "timeout"

    def test_header_written_once_across_reopens(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("bbb"))
        lines = open(path).read().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header["schema"] == LEDGER_SCHEMA
        assert header["version"] == LEDGER_VERSION

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa", "crash"))
            ledger.record(_outcome("aaa", "ok"))
        assert SweepLedger(path, sweep="s").load()["aaa"].status == "ok"


class TestLedgerSafety:
    def test_wrong_sweep_name_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="table2:4v"):
            pass
        with pytest.raises(ValueError, match="belongs to sweep"):
            SweepLedger(path, sweep="table3:5v").load()

    def test_non_ledger_file_refused(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError, match="not a"):
            SweepLedger(str(path), sweep="s").load()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb"))
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[:-20])  # SIGKILL mid-write
        ledger = SweepLedger(path, sweep="s")
        assert set(ledger.load()) == {"aaa"}
        assert ledger.skipped_lines == 1

    def test_mid_file_corruption_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s") as ledger:
            ledger.record(_outcome("aaa"))
        with open(path, "a") as handle:
            handle.write("garbage not json\n")
            handle.write('{"valid_json": "but not an outcome"}\n')
            handle.write(json.dumps(_outcome("bbb").as_dict()) + "\n")
        ledger = SweepLedger(path, sweep="s")
        loaded = ledger.load()
        # Every intact record survives, before and after the damage.
        assert set(loaded) == {"aaa", "bbb"}
        assert ledger.skipped_lines == 2
        # A clean reload resets the count.
        clean = str(tmp_path / "clean.jsonl")
        with SweepLedger(clean, sweep="s") as fresh:
            fresh.record(_outcome("ccc"))
        ledger.path = clean
        ledger.load()
        assert ledger.skipped_lines == 0

    def test_fsync_option_round_trips(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with SweepLedger(path, sweep="s", fsync=True) as ledger:
            ledger.record(_outcome("aaa"))
            ledger.record(_outcome("bbb"))
        loaded = SweepLedger(path, sweep="s").load()
        assert set(loaded) == {"aaa", "bbb"}

    def test_record_requires_open(self, tmp_path):
        ledger = SweepLedger(str(tmp_path / "ledger.jsonl"), sweep="s")
        with pytest.raises(RuntimeError):
            ledger.record(_outcome("aaa"))
