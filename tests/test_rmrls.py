"""Tests for the RMRLS core algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.pprm.system import PPRMSystem
from repro.synth.options import GREEDY_OPTIONS, SynthesisOptions
from repro.synth.rmrls import synthesize

FAST = SynthesisOptions(dedupe_states=True, max_steps=20_000)


class TestBasicBehaviour:
    def test_identity_needs_no_gates(self):
        result = synthesize(Permutation.identity(3), FAST)
        assert result.solved
        assert result.gate_count == 0

    def test_fig1_three_gates(self, fig1_spec):
        """The running example synthesizes into Fig. 3(d)'s circuit."""
        result = synthesize(fig1_spec, FAST)
        assert result.gate_count == 3
        assert result.verify(fig1_spec)
        assert result.circuit == Circuit.parse(
            3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)"
        )

    def test_accepts_image_list(self):
        result = synthesize([1, 0, 3, 2], FAST)
        assert result.solved
        assert result.gate_count == 1

    def test_accepts_pprm_system(self, fig1_spec):
        result = synthesize(fig1_spec.to_pprm(), FAST)
        assert result.gate_count == 3

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            synthesize(42)

    def test_keyword_option_overrides(self, fig1_spec):
        result = synthesize(fig1_spec, FAST, max_steps=5)
        assert result.options.max_steps == 5

    def test_single_not_gate(self):
        result = synthesize([1, 0], FAST)
        assert result.gate_count == 1
        assert str(result.circuit) == "TOF1(a)"


class TestPaperExamples:
    """The worked examples of Sec. V-C: verified circuits at (or below)
    the paper's gate counts."""

    CASES = [
        ([1, 0, 3, 2, 5, 7, 4, 6], 4),        # Example 1
        ([7, 0, 1, 2, 3, 4, 5, 6], 3),        # Example 2
        ([0, 1, 2, 3, 4, 6, 5, 7], 3),        # Example 3 (Fredkin)
        ([0, 1, 2, 4, 3, 5, 6, 7], 6),        # Example 4
        ([1, 2, 3, 4, 5, 6, 7, 0], 3),        # Example 6
    ]

    @pytest.mark.parametrize("images,paper_gates", CASES)
    def test_example(self, images, paper_gates):
        spec = Permutation(images)
        result = synthesize(spec, FAST)
        assert result.verify(spec)
        assert result.gate_count <= paper_gates


class TestWireSwapCompleteness:
    """The strict paper rule cannot synthesize wire swaps; the default
    linear growth exemption can (see SynthesisOptions docs)."""

    WIRE_SWAP = [0, 2, 1, 3, 4, 6, 5, 7]

    def test_default_options_solve_swap(self):
        spec = Permutation(self.WIRE_SWAP)
        result = synthesize(spec, FAST)
        assert result.verify(spec)
        assert result.gate_count == 3  # three CNOTs

    def test_paper_literal_rule_fails(self):
        options = FAST.with_(growth_exempt_literals=0, max_steps=5_000)
        result = synthesize(Permutation(self.WIRE_SWAP), options)
        assert not result.solved

    def test_strict_basic_rule_fails(self):
        options = FAST.with_(
            growth_exempt_literals=-1,
            complement_substitutions=False,
            extended_substitutions=False,
            growth_when_stuck=False,
            max_steps=5_000,
        )
        result = synthesize(Permutation(self.WIRE_SWAP), options)
        assert not result.solved


class TestBudgets:
    def test_step_budget_respected(self, rng):
        images = list(range(16))
        rng.shuffle(images)
        result = synthesize(Permutation(images), FAST, max_steps=50)
        assert result.stats.steps <= 50
        if not result.solved:
            assert result.stats.step_limited

    def test_time_budget(self, rng):
        images = list(range(32))
        rng.shuffle(images)
        result = synthesize(
            Permutation(images), SynthesisOptions(time_limit=0.05)
        )
        assert result.stats.elapsed_seconds < 5.0

    def test_max_gates_rejects_long_solutions(self):
        # Example 4 needs >= 5 gates; cap at 2 must fail.
        result = synthesize(
            Permutation([0, 1, 2, 4, 3, 5, 6, 7]), FAST, max_gates=2
        )
        assert not result.solved

    def test_stop_at_first(self, fig1_spec):
        eager = synthesize(fig1_spec, FAST, stop_at_first=True)
        assert eager.solved
        # May be worse than the best-known 3 gates, never better.
        assert eager.gate_count >= 3


class TestHeuristics:
    @pytest.mark.parametrize("greedy_k", [1, 3, 5])
    def test_greedy_solves_three_vars(self, rng, greedy_k):
        for _ in range(10):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize(
                spec,
                FAST,
                greedy_k=greedy_k,
                restart_steps=2_000,
            )
            assert result.verify(spec), images

    def test_restarts_counted(self, rng):
        images = list(range(16))
        rng.shuffle(images)
        result = synthesize(
            Permutation(images),
            SynthesisOptions(
                greedy_k=1, restart_steps=50, max_steps=2_000,
                dedupe_states=True,
            ),
        )
        # Either it solved quickly or it restarted at least once.
        assert result.solved or result.stats.restarts >= 1

    def test_greedy_options_preset(self, fig1_spec):
        result = synthesize(fig1_spec, GREEDY_OPTIONS.with_(max_steps=20_000))
        assert result.verify(fig1_spec)


class TestSoundness:
    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(8))))
    def test_every_result_verifies(self, images):
        spec = Permutation(images)
        result = synthesize(spec, FAST)
        assert result.solved
        assert result.verify(spec)

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(16))))
    def test_four_variables_verify_when_solved(self, images):
        spec = Permutation(images)
        result = synthesize(
            spec,
            SynthesisOptions(
                greedy_k=3, restart_steps=1_000, max_steps=8_000,
                dedupe_states=True, max_gates=40,
            ),
        )
        if result.solved:
            assert result.verify(spec)

    def test_stats_populated(self, fig1_spec):
        result = synthesize(fig1_spec, FAST)
        stats = result.stats
        assert stats.nodes_created > 0
        assert stats.nodes_expanded > 0
        assert stats.initial_terms == 8
        assert stats.solutions_found >= 1
        assert stats.elapsed_seconds >= 0
        assert isinstance(stats.as_dict(), dict)

    def test_trace_recording(self, fig1_spec):
        result = synthesize(fig1_spec, FAST, record_trace=True)
        assert result.trace is not None
        kinds = {event.kind for event in result.trace.events}
        assert "pop" in kinds and "create" in kinds and "solution" in kinds
        assert result.trace.render()
