"""Tests for ASCII circuit drawing."""

from repro.circuits.circuit import Circuit
from repro.circuits.drawing import draw_circuit
from repro.gates.fredkin import FredkinGate

import pytest


class TestDrawing:
    def test_fig3d_layout(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)")
        drawing = draw_circuit(circuit)
        lines = drawing.splitlines()
        # Highest wire on top, like the paper's figures.
        assert lines[0].startswith("c")
        assert lines[-1].startswith("a")
        assert "(+)" in drawing
        assert "*" in drawing

    def test_target_and_controls_on_right_wires(self):
        circuit = Circuit.parse(3, "TOF3(a, c, b)")
        rows = {
            line[0]: line for line in draw_circuit(circuit).splitlines()
            if line and line[0] in "abc"
        }
        assert "(+)" in rows["b"]
        assert "*" in rows["a"] and "*" in rows["c"]

    def test_vertical_connector_spans_gap(self):
        # Controls on a and c, target b: the connector passes through b's
        # neighbours only; check a gate spanning non-adjacent wires.
        circuit = Circuit.parse(3, "TOF2(a, c)")
        drawing = draw_circuit(circuit)
        assert "|" in drawing

    def test_identity_circuit(self):
        drawing = draw_circuit(Circuit.identity(2))
        assert drawing.splitlines()[0].startswith("b")

    def test_fredkin_marks(self):
        circuit = Circuit(3, [FredkinGate(0b100, 0, 1)])
        drawing = draw_circuit(circuit)
        assert drawing.count("x") == 2

    def test_custom_labels(self):
        circuit = Circuit.parse(2, "TOF2(a, b)")
        drawing = draw_circuit(circuit, labels=["in0", "in1"])
        assert "in0" in drawing and "in1" in drawing

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            draw_circuit(Circuit.identity(2), labels=["only-one"])

    def test_column_per_gate(self):
        circuit = Circuit.parse(2, "TOF1(a) TOF1(a) TOF1(a)")
        top = draw_circuit(circuit).splitlines()[-1]
        assert top.count("(+)") == 3
