"""Tests for repro.gates.library."""

import random

import pytest

from repro.gates.fredkin import FredkinGate
from repro.gates.library import GT, NCT, NCTS, GateLibrary, library_by_name
from repro.gates.toffoli import ToffoliGate


class TestEnumeration:
    def test_nct_count_three_lines(self):
        # 3 NOT + 6 CNOT + 3 TOF3 = 12 gates.
        gates = list(NCT.gates(3))
        assert len(gates) == 12
        assert NCT.gate_count(3) == 12

    def test_ncts_adds_swaps(self):
        gates = list(NCTS.gates(3))
        assert len(gates) == 15
        assert sum(1 for g in gates if isinstance(g, FredkinGate)) == 3

    def test_gt_count_three_lines(self):
        # On 3 lines GT coincides with NCT.
        assert GT.gate_count(3) == 12

    def test_gt_scales(self):
        # n * sum_k C(n-1, k) = n * 2^(n-1).
        assert GT.gate_count(4) == 4 * 8

    def test_enumeration_matches_count(self):
        for library in (NCT, NCTS, GT):
            for lines in (1, 2, 3, 4):
                assert len(list(library.gates(lines))) == library.gate_count(
                    lines
                )

    def test_gates_unique(self):
        gates = list(GT.gates(4))
        assert len(set(gates)) == len(gates)

    def test_zero_lines_rejected(self):
        with pytest.raises(ValueError):
            list(NCT.gates(0))


class TestMembership:
    def test_nct_allows_small_toffoli(self):
        assert NCT.allows(ToffoliGate(0b011, 2))
        assert not NCT.allows(ToffoliGate(0b0111, 3))

    def test_gt_allows_any_toffoli(self):
        assert GT.allows(ToffoliGate(0b11111110, 0))

    def test_swap_membership(self):
        swap_gate = FredkinGate(0, 0, 1)
        assert NCTS.allows(swap_gate)
        assert not NCT.allows(swap_gate)
        assert not GT.allows(swap_gate)

    def test_controlled_fredkin_not_in_ncts(self):
        assert not NCTS.allows(FredkinGate(0b100, 0, 1))


class TestRandomGate:
    def test_random_gates_fit(self):
        rng = random.Random(1)
        for _ in range(300):
            gate = GT.random_gate(6, rng)
            assert gate.min_lines() <= 6
            assert GT.allows(gate) or isinstance(gate, FredkinGate)

    def test_random_respects_size_limit(self):
        rng = random.Random(2)
        for _ in range(300):
            gate = NCT.random_gate(8, rng)
            if isinstance(gate, ToffoliGate):
                assert gate.size <= 3

    def test_random_covers_sizes(self):
        rng = random.Random(3)
        sizes = {GT.random_gate(6, rng).size for _ in range(500)}
        assert {1, 2, 3, 4, 5, 6} <= sizes


class TestLookup:
    def test_by_name(self):
        assert library_by_name("nct") is NCT
        assert library_by_name("GT") is GT
        assert library_by_name("NCTS") is NCTS

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            library_by_name("XYZ")

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            GateLibrary("bad", max_toffoli_size=0)
