"""Tests for the rmrls command-line interface."""

import json

import pytest

from repro.cli import main


class TestSynth:
    def test_spec_synthesis(self, capsys):
        code = main(["synth", "--spec", "1,0,7,2,3,4,5,6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gates: 3" in out
        assert "TOF" in out

    def test_draw_flag(self, capsys):
        main(["synth", "--spec", "1,0", "--draw"])
        out = capsys.readouterr().out
        assert "(+)" in out

    def test_benchmark_synthesis(self, capsys):
        code = main(
            ["synth", "--benchmark", "fig1", "--max-steps", "20000"]
        )
        assert code == 0
        assert "gates:" in capsys.readouterr().out

    def test_spec_and_benchmark_conflict(self, capsys):
        assert main(["synth"]) == 2
        assert main(["synth", "--spec", "1,0", "--benchmark", "fig1"]) == 2

    def test_budget_exhaustion_reports_failure(self, capsys):
        code = main(
            ["synth", "--benchmark", "example4", "--max-steps", "1",
             "--no-dedupe"]
        )
        assert code == 1
        assert "no circuit" in capsys.readouterr().out

    def test_greedy_flags(self, capsys):
        code = main(
            ["synth", "--spec", "1,0,3,2,5,7,4,6",
             "--greedy-k", "3", "--restart-steps", "500"]
        )
        assert code == 0

    def test_bidirectional_flag(self, capsys):
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6", "--bidirectional",
             "--max-steps", "10000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "direction: forward" in out
        assert "gates: 3" in out

    def test_bidirectional_needs_permutation(self, capsys):
        code = main(
            ["synth", "--benchmark", "shift28", "--bidirectional",
             "--max-steps", "10"]
        )
        assert code == 2


class TestObservabilityFlags:
    def test_json_prints_single_machine_parseable_object(self, capsys):
        code = main(["synth", "--spec", "1,0,7,2,3,4,5,6", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        report = json.loads(out)  # the whole stdout is one JSON document
        assert report["schema"] == "rmrls-run-report"
        assert report["solved"] is True
        assert report["gate_count"] == 3
        assert report["stats"]["steps"] > 0
        assert report["metrics"]["elim"]["count"] > 0
        assert report["phases"]["stride"] >= 1
        # No human-oriented lines around the JSON.
        assert "gates:" not in out

    def test_json_unsolved_reports_failure(self, capsys):
        code = main(
            ["synth", "--benchmark", "example4", "--max-steps", "1",
             "--no-dedupe", "--json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["solved"] is False
        assert report["gate_count"] is None

    def test_metrics_writes_valid_report(self, capsys, tmp_path):
        from repro.obs import validate_run_report

        path = tmp_path / "run.json"
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6", "--metrics", str(path)]
        )
        assert code == 0
        report = validate_run_report(json.loads(path.read_text()))
        assert report["metrics"]["queue_size"]["count"] > 0
        assert set(report["phases"]["phases"]) or report["phases"]["stride"]
        # Human output is still printed alongside the report file.
        assert "gates: 3" in capsys.readouterr().out

    def test_trace_jsonl_streams_events(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6",
             "--trace-jsonl", str(path)]
        )
        assert code == 0
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[-1]["event"] == "finish"
        assert any(record["event"] == "solution" for record in records)

    def test_metrics_missing_directory_fails_fast(self, capsys, tmp_path):
        code = main(
            ["synth", "--spec", "1,0",
             "--metrics", str(tmp_path / "nodir" / "run.json")]
        )
        assert code == 2
        assert "directory does not exist" in capsys.readouterr().err

    def test_progress_every(self, capsys):
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6", "--progress-every", "2"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[rmrls] step=" in err


class TestProfileCommand:
    def test_profile_spec(self, capsys):
        code = main(["profile", "--spec", "1,0,7,2,3,4,5,6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "solved: 3 gates" in out
        assert "phase breakdown" in out
        assert "substitute" in out
        assert "elim" in out and "queue_size" in out

    def test_profile_json(self, capsys):
        code = main(
            ["profile", "--spec", "1,0,7,2,3,4,5,6", "--sample-stride", "1",
             "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["phases"]["stride"] == 1
        assert "substitute" in report["phases"]["phases"]

    def test_profile_requires_one_spec(self, capsys):
        assert main(["profile"]) == 2


class TestInformational:
    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "rd53" in out and "shift28" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3(d)" in out or "Fig. 1" in out
        assert "alu" in out

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestEmbedCommand:
    def test_embed_pla(self, capsys, tmp_path):
        pla = tmp_path / "maj.pla"
        lines = [".i 3", ".o 1"]
        for m in range(8):
            if bin(m).count("1") >= 2:
                lines.append(f"{m:03b} 1")
        pla.write_text("\n".join(lines) + "\n.e\n")
        code = main(["embed", str(pla), "--max-steps", "15000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out
        assert "best (" in out


class TestCircuitFileCommands:
    def _write_real(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    REAL = (".version 2.0\n.numvars 3\n.variables a b c\n"
            ".begin\nt1 a\nt3 a c b\nt3 a b c\n.end\n")

    def test_draw(self, capsys, tmp_path):
        path = self._write_real(tmp_path, "c.real", self.REAL)
        assert main(["draw", path]) == 0
        out = capsys.readouterr().out
        assert "3 gates" in out
        assert "(+)" in out

    def test_verify_equivalent(self, capsys, tmp_path):
        a = self._write_real(tmp_path, "a.real", self.REAL)
        # Same function, different gate order for the commuting prefix.
        b = self._write_real(
            tmp_path, "b.real",
            ".numvars 3\n.begin\nt1 a\nt3 a c b\nt3 a b c\n.end\n",
        )
        assert main(["verify", a, b]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_verify_different(self, capsys, tmp_path):
        a = self._write_real(tmp_path, "a.real", self.REAL)
        c = self._write_real(
            tmp_path, "c.real", ".numvars 3\n.begin\nt1 a\n.end\n"
        )
        assert main(["verify", a, c]) == 1
        assert "DIFFERENT" in capsys.readouterr().out

    def test_decompose(self, capsys, tmp_path):
        wide = self._write_real(
            tmp_path, "w.real",
            ".numvars 5\n.begin\nt4 a b c d\n.end\n",
        )
        assert main(["decompose", wide]) == 0
        out = capsys.readouterr().out
        assert ".numvars 5" in out
        assert "t4" not in out  # all gates mapped to <= t3

    def test_decompose_impossible(self, capsys, tmp_path):
        full = self._write_real(
            tmp_path, "f.real",
            ".numvars 4\n.begin\nt4 a b c d\n.end\n",
        )
        assert main(["decompose", full]) == 1


class TestExperimentCommands:
    def test_table1_small(self, capsys):
        assert main(["table1", "--sample", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "optimal_nct" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--sample", "1"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_table4_named(self, capsys):
        assert main(["table4", "--names", "3_17"]) == 0
        assert "3_17" in capsys.readouterr().out

    def test_scalability_small(self, capsys):
        code = main(
            ["scalability", "--max-gates", "5", "--samples", "2",
             "--variables", "6"]
        )
        assert code == 0
        assert "maximum gate count 5" in capsys.readouterr().out


class TestSweep:
    def test_probes_json_reports_taxonomy(self, capsys):
        code = main(
            ["sweep", "probes", "--probes", "ok,unsolved,raise", "--json"]
        )
        assert code == 1  # failures present
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "rmrls-sweep-report"
        counts = document["sweep"]["counts"]
        assert counts["ok"] == 1
        assert counts["unsolved"] == 1
        assert counts["crash"] == 1

    def test_probes_human_summary(self, capsys):
        code = main(["sweep", "probes", "--probes", "ok,ok"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep probes: 2/2 tasks" in out
        assert "ok=2" in out

    def test_table2_limit_then_resume(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        base = ["sweep", "table2", "--sample", "3", "--seed", "7",
                "--resume", ledger, "--json"]
        assert main(base + ["--limit", "1"]) == 0
        first = json.loads(capsys.readouterr().out)
        sweep = first["results"]["random_4var"]["sweep"]
        assert sweep["interrupted"] and sweep["completed"] == 1

        assert main(base) == 0
        second = json.loads(capsys.readouterr().out)
        sweep = second["results"]["random_4var"]["sweep"]
        assert not sweep["interrupted"]
        assert sweep["completed"] == 3 and sweep["replayed"] == 1

    def test_strict_flag_surfaces_unsound(self, capsys, monkeypatch):
        from repro.circuits.circuit import Circuit

        monkeypatch.setattr(Circuit, "implements", lambda self, spec: False)
        with pytest.raises(AssertionError, match="unsound"):
            main(["sweep", "table2", "--sample", "1", "--strict"])

    def test_table4_sweep(self, capsys):
        code = main(["sweep", "table4", "--names", "fig1"])
        assert code == 0
        assert "Table IV" in capsys.readouterr().out


class TestStoreCli:
    def _seed(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["sweep", "probes", "--probes", "ok", "--store", store])
        assert code == 0
        capsys.readouterr()
        return store

    def test_sweep_seeds_and_store_stats(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code = main(["sweep", "table2", "--sample", "1", "--seed", "7",
                     "--store", store, "--fsync-ledger",
                     "--resume", str(tmp_path / "ledger.jsonl")])
        assert code == 0
        capsys.readouterr()
        assert main(["store", "stats", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["keys"] == 1 and stats["records"] == 1

    def test_verify_repair_round_trip(self, capsys, tmp_path):
        import os

        store = str(tmp_path / "store")
        code = main(["sweep", "table2", "--sample", "2", "--seed", "7",
                     "--store", store])
        assert code == 0
        capsys.readouterr()
        segment_dir = os.path.join(store, "segments")
        (name,) = os.listdir(segment_dir)
        path = os.path.join(segment_dir, name)
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 10)

        assert main(["store", "verify", store]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["problems"] == {"torn": 1}

        assert main(["store", "verify", "--repair", "--deep", store]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "--deep", store]) == 0
        assert json.loads(capsys.readouterr().out)["ok"]

    def test_gc_and_export(self, capsys, tmp_path):
        store = self._seed_table2(tmp_path, capsys)
        assert main(["store", "gc", store]) == 0
        gc_report = json.loads(capsys.readouterr().out)
        assert gc_report["records_after"] == gc_report["keys"]
        out_path = str(tmp_path / "export.jsonl")
        assert main(["store", "export", store, "-o", out_path]) == 0
        capsys.readouterr()
        lines = open(out_path).read().splitlines()
        assert len(lines) == gc_report["keys"]
        assert all(json.loads(line)["sum"] for line in lines)

    def _seed_table2(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["sweep", "table2", "--sample", "2", "--seed", "7",
                     "--store", store]) == 0
        capsys.readouterr()
        return store
