"""Smoke tests for the runnable example scripts (fast ones only; the
slower walkthroughs run in benchmarks/ and by hand)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    script = EXAMPLES / name
    assert script.exists(), script
    argv = sys.argv
    sys.argv = [str(script)]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestQuickstart:
    def test_output(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)" in out
        assert "quantum cost: 11" in out


class TestSearchTreeTour:
    def test_output(self, capsys):
        out = _run("search_tree_tour.py", capsys)
        assert "basic (Sec. IV-A): a = a + 1, b = b + c, b = b + ac" in out
        assert "solution" in out
        assert "greedy k=3" in out


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "adder_design.py",
            "benchmark_tour.py",
            "search_tree_tour.py",
            "nct_mapping.py",
            "pla_flow.py",
        ],
    )
    def test_script_present_and_has_main(self, name):
        text = (EXAMPLES / name).read_text()
        assert '__main__' in text
        assert text.startswith("#!/usr/bin/env python3")
