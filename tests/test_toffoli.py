"""Tests for repro.gates.toffoli."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gates.toffoli import ToffoliGate, cnot, not_gate, toffoli


class TestConstruction:
    def test_not_gate(self):
        gate = not_gate(2)
        assert gate.is_not()
        assert gate.size == 1
        assert str(gate) == "TOF1(c)"

    def test_cnot(self):
        gate = cnot(0, 1)
        assert gate.is_cnot()
        assert gate.size == 2
        assert str(gate) == "TOF2(a, b)"

    def test_toffoli_from_indices(self):
        gate = toffoli([0, 2], 1)
        assert gate.size == 3
        assert gate.controls == 0b101
        assert gate.target == 1

    def test_from_names_paper_notation(self):
        gate = ToffoliGate.from_names("c", "a", "b")
        assert gate.controls == 0b101
        assert gate.target == 1
        assert str(gate) == "TOF3(a, c, b)"

    def test_target_in_controls_rejected(self):
        with pytest.raises(ValueError):
            ToffoliGate(0b010, 1)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            ToffoliGate(0, -1)

    def test_from_names_empty_rejected(self):
        with pytest.raises(ValueError):
            ToffoliGate.from_names()


class TestSemantics:
    def test_equation_1(self):
        """Equation (1): the target flips iff all controls are one."""
        gate = ToffoliGate(0b011, 2)
        for assignment in range(8):
            result = gate.apply(assignment)
            if assignment & 0b011 == 0b011:
                assert result == assignment ^ 0b100
            else:
                assert result == assignment

    def test_not_always_flips(self):
        gate = not_gate(0)
        assert gate.apply(0) == 1
        assert gate.apply(1) == 0

    @given(st.integers(0, 255), st.integers(0, 7))
    def test_involution(self, assignment, target):
        controls = 0b10101010 & ~(1 << target)
        gate = ToffoliGate(controls, target)
        assert gate.apply(gate.apply(assignment)) == assignment

    def test_inverse_is_self(self):
        gate = toffoli([0], 1)
        assert gate.inverse() is gate


class TestStructure:
    def test_lines(self):
        gate = ToffoliGate(0b101, 1)
        assert gate.lines == 0b111

    def test_min_lines(self):
        assert ToffoliGate(0b100, 0).min_lines() == 3
        assert not_gate(4).min_lines() == 5

    def test_commutes_disjoint(self):
        assert cnot(0, 1).commutes_with(cnot(2, 3))

    def test_commutes_same_target(self):
        assert cnot(0, 2).commutes_with(cnot(1, 2))

    def test_not_commutes_target_into_control(self):
        assert not cnot(0, 1).commutes_with(cnot(1, 2))

    def test_shared_control_commutes(self):
        assert cnot(0, 1).commutes_with(cnot(0, 2))

    def test_commutation_is_semantic(self, rng):
        """When commutes_with says yes, the two orders agree."""
        for _ in range(200):
            g1 = ToffoliGate(rng.randrange(16) & ~(1 << 0), 0)
            t2 = rng.randrange(4)
            g2 = ToffoliGate(rng.randrange(16) & ~(1 << t2), t2)
            if g1.commutes_with(g2):
                for x in range(16):
                    assert g1.apply(g2.apply(x)) == g2.apply(g1.apply(x))

    def test_factor_string(self):
        assert ToffoliGate(0b101, 1).factor_string() == "b = b + ac"
        assert not_gate(0).factor_string() == "a = a + 1"

    def test_equality_and_hash(self):
        assert ToffoliGate(0b1, 1) == cnot(0, 1)
        assert len({cnot(0, 1), cnot(0, 1)}) == 1
        assert cnot(0, 1) != cnot(1, 0)
