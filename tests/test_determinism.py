"""Determinism: every component is free of hidden randomness.

Reproducibility of the experiment tables depends on synthesis being a
pure function of (specification, options); these tests run components
twice and require bit-identical outcomes.
"""

import random

from repro.baselines.spectral_synthesis import spectral_synthesize
from repro.baselines.transformation import transformation_synthesize
from repro.functions.permutation import Permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


def _spec(seed: int, num_vars: int = 3) -> Permutation:
    rng = random.Random(seed)
    images = list(range(1 << num_vars))
    rng.shuffle(images)
    return Permutation(images)


class TestSynthesisDeterminism:
    def test_identical_runs_identical_results(self):
        options = SynthesisOptions(dedupe_states=True, max_steps=15_000)
        for seed in (1, 2, 3):
            spec = _spec(seed)
            first = synthesize(spec, options)
            second = synthesize(spec, options)
            assert first.circuit == second.circuit
            assert first.stats.steps == second.stats.steps
            assert first.stats.nodes_created == second.stats.nodes_created

    def test_greedy_runs_deterministic(self):
        options = SynthesisOptions(
            greedy_k=1, restart_steps=100, max_steps=5_000,
            dedupe_states=True, max_gates=40,
        )
        spec = _spec(9, num_vars=4)
        first = synthesize(spec, options)
        second = synthesize(spec, options)
        assert first.circuit == second.circuit
        assert first.stats.restarts == second.stats.restarts

    def test_trace_deterministic(self):
        options = SynthesisOptions(
            dedupe_states=True, max_steps=5_000, record_trace=True
        )
        spec = _spec(4)
        first = synthesize(spec, options)
        second = synthesize(spec, options)
        assert first.trace.events == second.trace.events


class TestBaselineDeterminism:
    def test_transformation(self):
        spec = _spec(11)
        assert transformation_synthesize(spec) == transformation_synthesize(
            spec
        )

    def test_spectral(self):
        spec = _spec(12)
        first = spectral_synthesize(spec)
        second = spectral_synthesize(spec)
        assert first.circuit == second.circuit
        assert first.steps == second.steps
