"""Heterogeneous portfolio integration (strategy decks end to end).

The differential soundness contract for deck runs: every solved
slice's shipped circuit — inverse-direction slots included — must
simulation-verify against the *forward* spec, the deterministic
winner must carry variant provenance, and on 3-variable specs in the
deterministic regime the deck never regresses the gate count the
serial search finds.  Inline fleets (the daemonic-context fallback)
are the fast path here; one pooled test pins process-fleet parity.
"""

from __future__ import annotations

import json
import random

from repro.io.real_format import dump_real, load_real
from repro.parallel import spec_family, synthesize_portfolio
from repro.synth import synthesize

from conftest import random_spec

#: The deterministic differential regime (see test_portfolio.py): no
#: cancellation, dedupe on, a step cap 3-variable exhaustion never
#: binds.
_DIFF = dict(dedupe_states=True, max_steps=200_000)


def _deck_run(spec, stats_path=None, strategies="default", jobs=4):
    options = dict(_DIFF, portfolio_strategies=strategies)
    if stats_path is not None:
        options["strategy_stats"] = str(stats_path)
    return synthesize_portfolio(spec, jobs=jobs, inline=True, **options)


class TestDeckSoundness:
    def test_default_deck_races_four_distinct_variants(self, fig1_spec):
        result = _deck_run(fig1_spec)
        assert result.solved
        summary = result.portfolio
        assert summary.strategies == (
            "paper", "greedy", "inverse", "eliminate"
        )
        raced = {entry.variant for entry in summary.slices}
        assert len(raced) >= 4
        assert summary.winner_variant in raced
        directions = {entry.direction for entry in summary.slices}
        assert directions == {"forward", "inverse"}

    def test_every_solved_slice_verifies_forward(self, fig1_spec):
        # Inverse slots search f⁻¹ but ship the reversed cascade, so
        # every shipped circuit — regardless of slot direction — must
        # implement the forward spec.
        result = _deck_run(fig1_spec, strategies="full", jobs=8)
        solved = [
            entry for entry in result.portfolio.slices
            if entry.status == "ok" and entry.circuit
        ]
        assert solved
        assert any(entry.direction == "inverse" for entry in solved)
        for entry in solved:
            assert load_real(entry.circuit).implements(fig1_spec), (
                f"slice {entry.slice_index} ({entry.variant}, "
                f"{entry.direction}) shipped a wrong circuit"
            )

    def test_winner_metadata_is_consistent(self, fig1_spec):
        result = _deck_run(fig1_spec)
        summary = result.portfolio
        winner = [
            entry for entry in summary.slices
            if entry.slice_index == summary.winner_slice
        ]
        assert len(winner) == 1
        assert winner[0].variant == summary.winner_variant
        assert winner[0].gate_count == result.gate_count
        rollup = summary.variant_rollup()
        assert rollup[summary.winner_variant]["best_gate_count"] == (
            result.gate_count
        )

    def test_deck_never_regresses_serial_gates_3var(self):
        # In the deterministic regime the serial search exhausts and
        # finds the optimum, so "never regress" means gate-count
        # equality.  The contract holds for decks of *complete*
        # variants: priority weights only reorder exploration, and the
        # forward slots jointly cover the whole seed pool.  Greedy-k
        # variants are excluded deliberately — their pruning trades
        # completeness (Sec. IV-E), so a deck that deals the optimal
        # seed to a greedy slot may ship a longer cascade; that is a
        # feature of the race, not a soundness bug (the soundness
        # tests above still verify whatever such a deck ships).
        stream = random.Random(0x5EED)
        for _ in range(4):
            spec = random_spec(stream, 3)
            serial = synthesize(spec, **_DIFF)
            deck = _deck_run(
                spec, strategies="paper,inverse,eliminate", jobs=3
            )
            assert deck.solved == serial.solved
            if serial.solved:
                assert deck.gate_count == serial.gate_count, (
                    f"deck found {deck.gate_count} gates, serial "
                    f"{serial.gate_count}, for {spec.images}"
                )
                assert deck.circuit.implements(spec)


class TestDeckDeterminism:
    def test_two_inline_runs_are_byte_identical(self, fig1_spec):
        first = _deck_run(fig1_spec)
        second = _deck_run(fig1_spec)
        assert dump_real(first.circuit) == dump_real(second.circuit)
        assert first.portfolio.winner_variant == (
            second.portfolio.winner_variant
        )
        assert first.portfolio.deck == second.portfolio.deck

        def scrub(summary):
            data = summary.as_dict()
            for entry in data["slices"]:
                entry.pop("elapsed_seconds")
            for row in data.get("variants", {}).values():
                row.pop("elapsed_seconds")
            return json.dumps(data, sort_keys=True)

        assert scrub(first.portfolio) == scrub(second.portfolio)

    def test_pooled_fleet_matches_inline(self, fig1_spec):
        inline = _deck_run(fig1_spec)
        pooled = synthesize_portfolio(
            fig1_spec, jobs=4, inline=False,
            portfolio_strategies="default", **_DIFF,
        )
        assert pooled.solved and inline.solved
        assert pooled.gate_count == inline.gate_count
        assert pooled.portfolio.winner_variant == (
            inline.portfolio.winner_variant
        )
        assert pooled.portfolio.deck == inline.portfolio.deck


class TestAdaptiveEndToEnd:
    def test_deck_runs_accumulate_stats(self, fig1_spec, tmp_path):
        path = tmp_path / "stats.jsonl"
        first = _deck_run(fig1_spec, stats_path=path)
        assert path.exists()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["schema"] == "rmrls-strategy-stats"
        assert record["family"] == spec_family(fig1_spec.to_pprm())
        assert record["winner"] == first.portfolio.winner_variant

        # The first run saw an empty history; the second sees one
        # record and reports the bias it applied.
        assert first.portfolio.adaptive["records"] == 0
        second = _deck_run(fig1_spec, stats_path=path)
        assert second.portfolio.adaptive["records"] == 1
        assert second.portfolio.adaptive["family_runs"] > 0
        assert second.portfolio.adaptive["weights"] is not None
        assert len(path.read_text().splitlines()) == 2

    def test_identical_runs_append_identical_stat_lines(
        self, fig1_spec, tmp_path
    ):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _deck_run(fig1_spec, stats_path=path_a)
        _deck_run(fig1_spec, stats_path=path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_seeded_history_shifts_dealt_slots(self, fig1_spec, tmp_path):
        # Fabricate a history where `eliminate` always wins this
        # family: the next deck must deal it more than the one slot an
        # even 4-way split would.
        path = tmp_path / "stats.jsonl"
        family = spec_family(fig1_spec.to_pprm())
        record = {
            "schema": "rmrls-strategy-stats", "version": 1,
            "family": family, "jobs": 4, "winner": "eliminate",
            "variants": {
                name: {"slices": 1, "solved": 1, "steps": 5,
                       "best_gates": 3}
                for name in ("paper", "greedy", "inverse", "eliminate")
            },
        }
        with open(path, "w") as handle:
            for _ in range(10):
                handle.write(json.dumps(record, sort_keys=True) + "\n")

        baseline = _deck_run(fig1_spec)
        biased = _deck_run(fig1_spec, stats_path=path)
        base_counts = {}
        for slot in baseline.portfolio.deck:
            base_counts[slot["variant"]] = (
                base_counts.get(slot["variant"], 0) + 1
            )
        biased_counts = {}
        for slot in biased.portfolio.deck:
            biased_counts[slot["variant"]] = (
                biased_counts.get(slot["variant"], 0) + 1
            )
        assert base_counts["eliminate"] == 1
        assert biased_counts["eliminate"] > base_counts["eliminate"]
        # The biased fleet still solves and verifies.
        assert biased.solved
        assert biased.circuit.implements(fig1_spec)
