"""Tests for the benchmark library: verbatim specs and reconstructions."""

import pytest

from repro.benchlib.generators import (
    alu_function,
    controlled_shifter,
    decoder_2to4,
    graycode,
    hamming_encoder,
    hidden_weighted_bit,
    majority_function,
    mod_adder,
    modk_zero_detector,
    ones_count_membership,
    parity_function,
    two_of_five,
    weight_counter,
    wraparound_shift,
)
from repro.benchlib.specs import all_benchmarks, benchmark, benchmark_names


class TestPaperSpecs:
    def test_all_paper_specs_are_reversible(self):
        # Permutation validates bijectivity on construction; reaching
        # here means every verbatim table parsed cleanly.
        for spec in all_benchmarks().values():
            if spec.permutation is not None:
                assert spec.permutation.num_vars == spec.num_lines

    def test_majority5_msb_is_majority(self):
        spec = benchmark("majority5").permutation
        for m in range(32):
            expected = 1 if bin(m).count("1") >= 3 else 0
            assert spec(m) >> 4 & 1 == expected

    def test_5one013_predicate(self):
        spec = benchmark("5one013").permutation
        for m in range(32):
            expected = 1 if bin(m).count("1") in (0, 1, 3) else 0
            assert spec(m) >> 4 & 1 == expected

    def test_alu_spec_matches_fig9(self):
        spec = benchmark("alu").permutation
        reconstruction = alu_function()
        for m in range(32):
            assert spec(m) >> 4 & 1 == reconstruction(m) >> 4 & 1

    def test_adder_restricts_to_full_adder(self):
        spec = benchmark("adder").permutation
        for m in range(8):  # d = 0 rows only
            a, b, c = m & 1, m >> 1 & 1, m >> 2 & 1
            word = spec(m)
            assert word >> 3 & 1 == (1 if a + b + c >= 2 else 0)
            assert word >> 2 & 1 == (a + b + c) & 1
            assert word >> 1 & 1 == a ^ b

    def test_decod24_verbatim_matches_reconstruction(self):
        verbatim = benchmark("decod24").permutation
        rebuilt = decoder_2to4()
        for m in range(4):  # constant inputs at 0
            assert verbatim(m) == rebuilt(m)

    def test_example_shifts(self):
        assert benchmark("example2").permutation == wraparound_shift(3, -1)
        assert benchmark("example6").permutation == wraparound_shift(3, 1)
        assert benchmark("example7").permutation == wraparound_shift(4, 1)

    def test_lookup_errors(self):
        with pytest.raises(KeyError):
            benchmark("nonexistent")

    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)
        assert "rd53" in names


class TestGenerators:
    def test_controlled_shifter_semantics(self):
        spec = controlled_shifter(3)
        for m in range(32):
            shift = m >> 3
            value = m & 7
            assert spec(m) == (shift << 3) | ((value + shift) % 8)

    def test_graycode_is_n_minus_1_cnots(self):
        spec = graycode(4)
        for m in range(16):
            assert spec(m) == m ^ (m >> 1)

    def test_mod_adder_residues(self):
        spec = mod_adder(3, 5)
        for a in range(5):
            for b in range(5):
                assert spec((a << 3) | b) == (a << 3) | ((a + b) % 5)

    def test_mod_adder_power_of_two(self):
        spec = mod_adder(2, 4)
        for a in range(4):
            for b in range(4):
                assert spec((a << 2) | b) == (a << 2) | ((a + b) % 4)

    def test_mod_adder_bad_modulus(self):
        with pytest.raises(ValueError):
            mod_adder(2, 5)

    def test_modk_zero_detector(self):
        spec = modk_zero_detector(4, 5)
        for m in range(16):
            expected = m ^ ((1 if m % 5 == 0 else 0) << 4)
            assert spec(m) == expected

    def test_hwb_rotates_by_weight(self):
        spec = hidden_weighted_bit(4)
        assert spec(0) == 0
        assert spec(0b1111) == 0b1111
        # 0b0001 has weight 1 -> rotate left 1 -> 0b0010.
        assert spec(0b0001) == 0b0010

    def test_weight_counter_semantics(self):
        spec = weight_counter(3)
        for m in range(8):  # constant carry lines at 0
            out = spec(m)
            weight = bin(m).count("1")
            assert out >> 3 == weight >> 1
            assert out >> 2 & 1 == weight & 1

    def test_weight_counter_rd53_lines(self):
        assert weight_counter(5).num_vars == 7  # Table IV line budget

    def test_parity_function(self):
        spec = parity_function(5)
        for m in range(32):
            flip = bin(m & 0b1111).count("1") & 1
            assert spec(m) == m ^ (flip << 4)

    def test_ones_count_membership(self):
        spec = ones_count_membership(5, {2, 4})
        for m in range(32):
            weight = bin(m & 0b1111).count("1")
            flip = 1 if weight in (2, 4) else 0
            assert spec(m) == m ^ (flip << 4)

    def test_two_of_five_predicate(self):
        spec = two_of_five()
        for m in range(64):
            flip = 1 if bin(m & 0b11111).count("1") == 2 else 0
            assert spec(m) == m ^ (flip << 5)

    def test_majority_balanced_embedding(self):
        spec = majority_function(3)
        for m in range(8):
            expected = 1 if bin(m).count("1") >= 2 else 0
            assert spec(m) >> 2 & 1 == expected

    def test_majority_even_rejected(self):
        with pytest.raises(ValueError):
            majority_function(4)

    def test_hamming_encoder_parities(self):
        spec = hamming_encoder()
        for data in range(16):
            word = spec(data)  # parity lines start at 0
            assert word & 0b1111 == data
            p1 = word >> 4 & 1
            assert p1 == (data & 1) ^ (data >> 1 & 1) ^ (data >> 3 & 1)

    def test_hamming_layout_guarded(self):
        with pytest.raises(ValueError):
            hamming_encoder(5)
