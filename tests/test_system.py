"""Tests for repro.pprm.system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pprm.parser import parse_system
from repro.pprm.system import PPRMSystem


def permutations_of_8():
    return st.permutations(list(range(8)))


class TestConstruction:
    def test_identity(self):
        system = PPRMSystem.identity(3)
        assert system.is_identity()
        assert system.term_count() == 3

    def test_from_permutation_paper_eq3(self, fig1_spec):
        # Equation (3): a_o = a+1, b_o = b+c+ac, c_o = b+ab+ac.
        system = PPRMSystem.from_permutation(list(fig1_spec.images))
        expected = parse_system(
            """
            a_out = a + 1
            b_out = b + c + ac
            c_out = b + ab + ac
            """
        )
        assert system == expected

    def test_bad_length(self):
        with pytest.raises(ValueError):
            PPRMSystem.from_permutation([0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PPRMSystem([])


class TestRoundTrip:
    @given(permutations_of_8())
    def test_images_round_trip(self, images):
        system = PPRMSystem.from_permutation(images)
        assert system.to_images() == list(images)

    @given(permutations_of_8(), st.integers(0, 7))
    def test_evaluate_matches_images(self, images, assignment):
        system = PPRMSystem.from_permutation(images)
        assert system.evaluate(assignment) == images[assignment]


class TestSubstitution:
    def test_substitute_all_outputs(self, fig1_spec):
        system = fig1_spec.to_pprm()
        after = system.substitute(0, 0)  # a := a + 1
        expected = parse_system(
            """
            a_out = a
            b_out = b + ac
            c_out = c + ab + ac
            """
        )
        assert after == expected

    def test_substitution_sequence_reaches_identity(self, fig1_spec):
        system = fig1_spec.to_pprm()
        system = system.substitute(0, 0)        # a := a + 1
        system = system.substitute(1, 0b101)    # b := b + ac
        system = system.substitute(2, 0b011)    # c := c + ab
        assert system.is_identity()

    @given(permutations_of_8(), st.integers(0, 2), st.integers(0, 7))
    def test_substitution_equals_gate_composition(
        self, images, target, factor
    ):
        factor &= ~(1 << target)
        system = PPRMSystem.from_permutation(images)
        substituted = system.substitute(target, factor)

        def gate(x):
            if x & factor == factor:
                return x ^ (1 << target)
            return x

        assert substituted.to_images() == [
            images[gate(x)] for x in range(8)
        ]


class TestQueries:
    def test_solved_outputs(self):
        system = parse_system(
            """
            a_out = a
            b_out = b + a
            c_out = c
            """
        )
        assert system.solved_outputs() == 2
        assert not system.is_identity()

    def test_term_count(self, fig1_spec):
        assert fig1_spec.to_pprm().term_count() == 8

    def test_str_contains_all_outputs(self, fig1_spec):
        text = str(fig1_spec.to_pprm())
        assert "a_out" in text and "c_out" in text

    def test_hashable(self, fig1_spec):
        s1 = fig1_spec.to_pprm()
        s2 = fig1_spec.to_pprm()
        assert len({s1, s2}) == 1
