"""Tests for NCTS synthesis (RMRLS + Fredkin folding) and DOT traces."""

from repro.functions.permutation import Permutation
from repro.synth import SynthesisOptions, synthesize, synthesize_ncts

FAST = SynthesisOptions(dedupe_states=True, max_steps=20_000)


class TestNctsSynthesis:
    def test_fredkin_collapses_to_one_gate(self):
        """Example 3's spec IS the Fredkin gate: NCTS synthesis returns
        exactly one gate where NCT needs three."""
        spec = Permutation([0, 1, 2, 3, 4, 6, 5, 7])
        result = synthesize_ncts(spec, FAST)
        assert result.solved
        assert result.gate_count == 1
        assert result.fredkin_count == 1
        assert result.toffoli_circuit.gate_count() == 3
        assert result.circuit.to_permutation() == spec

    def test_never_more_gates_than_toffoli(self, rng):
        for _ in range(8):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize_ncts(spec, FAST)
            assert result.solved
            assert result.gate_count <= result.toffoli_circuit.gate_count()
            assert result.circuit.to_permutation() == spec

    def test_unsolved_propagates(self):
        spec = Permutation([0, 1, 2, 4, 3, 5, 6, 7])
        result = synthesize_ncts(spec, FAST.with_(max_gates=2))
        assert not result.solved
        assert result.gate_count is None
        assert result.fredkin_count == 0

    def test_identity(self):
        result = synthesize_ncts(Permutation.identity(2), FAST)
        assert result.gate_count == 0


class TestDotExport:
    def test_dot_structure(self, fig1_spec):
        result = synthesize(fig1_spec, FAST.with_(record_trace=True))
        dot = result.trace.to_dot()
        assert dot.startswith("digraph search {")
        assert dot.rstrip().endswith("}")
        assert "peripheries=2" in dot  # a solution node
        assert "->" in dot

    def test_dot_node_cap(self, fig1_spec):
        result = synthesize(fig1_spec, FAST.with_(record_trace=True))
        dot = result.trace.to_dot(max_nodes=2)
        # root + at most 2 created nodes (solutions may add labels).
        node_lines = [
            line for line in dot.splitlines() if "[label=" in line
        ]
        assert len(node_lines) <= 4
