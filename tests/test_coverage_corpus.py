"""The corpus-backed regression oracle.

``results/coverage3.jsonl`` records the best-known gate count for every
canonical class of 3-variable reversible functions.  These tests hold
every engine to that standard: re-synthesizing a seeded sample of
classes must never need *more* gates than the corpus records.  A
regression fails with a per-class diff table, because "the engine got
worse on these 7 functions" is actionable and "assert failed" is not.

``RMRLS_CORPUS`` points the suite at an alternative coverage file —
the CI smoke job builds a 2-shard slice from scratch and runs this
same suite against it.  The deep pass (2,000 classes, both engines)
runs under ``RMRLS_SLOW=1``.
"""

import os
import random
from pathlib import Path

import pytest

from repro.functions.permutation import Permutation
from repro.harness.tasks import options_from_payload
from repro.sweeps import (
    circuit_from_record,
    coverage_histogram,
    get_universe,
    load_coverage,
    validate_coverage,
)
from repro.synth.rmrls import synthesize

DEFAULT_CORPUS = (
    Path(__file__).resolve().parent.parent / "results" / "coverage3.jsonl"
)
CORPUS_PATH = Path(os.environ.get("RMRLS_CORPUS") or DEFAULT_CORPUS)

#: Seeded sample sizes: the fast pass splits ~200 classes between the
#: two engines; the slow pass deep-checks 2,000.
SAMPLE_PER_ENGINE = 100
SLOW_SAMPLE_TOTAL = 2000

_SEED = 0xC0FFEE


def _corpus():
    if not CORPUS_PATH.exists():
        pytest.skip(f"coverage corpus not found at {CORPUS_PATH}")
    return load_coverage(str(CORPUS_PATH))


def _is_committed_full_corpus(header) -> bool:
    """True for the repository's full 40,320-function corpus (as
    opposed to a CI slice pointed at via RMRLS_CORPUS)."""
    return (
        header.get("universe") == "perm3"
        and header.get("items") == get_universe("perm3").size
    )


def _sample_solved(records, count, seed):
    solved = [record for record in records if record.get("status") == "ok"]
    if not solved:
        pytest.skip("corpus has no solved classes to sample")
    rng = random.Random(seed)
    if count >= len(solved):
        return solved
    return rng.sample(solved, count)


def _resynthesize_and_diff(records, header, engine):
    """Re-synthesize ``records`` under ``engine``; return regressions."""
    options = options_from_payload(dict(header.get("options") or {}))
    options = options.with_(engine=engine)
    regressions = []
    for record in records:
        spec = Permutation(list(record["images"]))
        result = synthesize(spec, options)
        if not result.solved:
            regressions.append((record, None))
        elif result.circuit.gate_count() > record["gates"]:
            regressions.append((record, result.circuit.gate_count()))
    return regressions


def _fail_with_diff_table(engine, regressions, total):
    rows = [
        f"  {'class':>6}  {'images':<26}  {'best-known':>10}  {'now':>5}",
    ]
    for record, gates in regressions:
        rows.append(
            f"  {record['class_rank']:>6}  "
            f"{str(record['images']):<26}  "
            f"{record['gates']:>10}  "
            f"{'unsolved' if gates is None else gates:>5}"
        )
    pytest.fail(
        f"engine '{engine}' regressed {len(regressions)}/{total} sampled "
        f"classes against the coverage corpus:\n" + "\n".join(rows),
        pytrace=False,
    )


class TestCorpusIntegrity:
    def test_corpus_validates_with_replay(self):
        _corpus()
        report = validate_coverage(str(CORPUS_PATH), replay=32)
        assert report["records"] > 0
        assert report["replayed"] > 0

    def test_committed_corpus_covers_all_40320_functions(self):
        header, records = _corpus()
        if not _is_committed_full_corpus(header):
            pytest.skip("RMRLS_CORPUS points at a partial slice")
        assert header["items"] == 6828
        assert len(records) == 6828
        assert sum(record["class_size"] for record in records) == 40320
        assert all(record["status"] == "ok" for record in records)

    def test_histogram_agrees_with_paper_table1(self):
        """The corpus's weighted gate-count distribution must sit in the
        ballpark Table I establishes for the paper's own NCT run: no
        function above the optimal-NCT bound plus slack, and an average
        close to the published 6.10."""
        from repro.experiments.paper_data import TABLE1, TABLE1_AVERAGES

        header, records = _corpus()
        if not _is_committed_full_corpus(header):
            pytest.skip("RMRLS_CORPUS points at a partial slice")
        histogram = coverage_histogram(records, weighted=True)
        assert sum(histogram.values()) == 40320
        # Nothing may beat 0 gates, and the worst class must stay
        # within the paper's observed NCT worst case (9) + 1 slack.
        assert min(histogram) >= 0
        assert max(histogram) <= max(TABLE1["ours_nct"]) + 1
        # The identity is the unique 0-gate function; 12 NOT-only
        # functions need exactly 1 gate.  These small classes are
        # search-order independent and must match the paper exactly.
        assert histogram[0] == TABLE1["ours_nct"][0] == 1
        assert histogram[1] == TABLE1["ours_nct"][1] == 12
        average = (
            sum(gates * count for gates, count in histogram.items()) / 40320
        )
        assert abs(average - TABLE1_AVERAGES["ours_nct"]) < 0.15


class TestCorpusRegression:
    @pytest.mark.parametrize("engine", ["reference", "packed"])
    def test_sampled_classes_not_regressed(self, engine):
        header, records = _corpus()
        sample = _sample_solved(
            records, SAMPLE_PER_ENGINE,
            _SEED + {"reference": 1, "packed": 2}[engine],
        )
        regressions = _resynthesize_and_diff(sample, header, engine)
        if regressions:
            _fail_with_diff_table(engine, regressions, len(sample))

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["reference", "packed"])
    def test_deep_pass_2000_classes(self, engine):
        header, records = _corpus()
        sample = _sample_solved(
            records, SLOW_SAMPLE_TOTAL // 2, _SEED ^ 0x510
        )
        regressions = _resynthesize_and_diff(sample, header, engine)
        if regressions:
            _fail_with_diff_table(engine, regressions, len(sample))


class TestTable1FromCorpus:
    def test_ours_column_comes_from_corpus_without_synthesis(self):
        from repro.experiments.table1 import run_table1

        header, records = _corpus()
        results = run_table1(
            sample=0, include_miller=False, corpus=str(CORPUS_PATH)
        )
        ours = results["ours_nct"]
        assert ours.histogram == dict(
            sorted(coverage_histogram(records, weighted=True).items())
        )
        assert ours.attempted == header["functions"]
        assert "sweep" not in ours.extras  # no synthesis ran
        assert ours.extras["corpus"]["body_digest"] == \
            header["body_digest"]
        # The exhaustive optimal columns still compute live.
        assert results["optimal_nct"].attempted > 0


class TestCorpusAsOracle:
    def test_recorded_circuits_simulate_their_class(self, rng):
        header, records = _corpus()
        for record in rng.sample(
            [r for r in records if r.get("status") == "ok"],
            min(50, len(records)),
        ):
            circuit = circuit_from_record(record)
            assert circuit.implements(Permutation(list(record["images"])))
            assert circuit.gate_count() == record["gates"]

    def test_corpus_inverse_circuits_compute_inverse_functions(self, rng):
        """Inverse-of-circuit is the free second oracle: the reversed
        cascade must simulate to the representative's inverse."""
        header, records = _corpus()
        for record in rng.sample(
            [r for r in records if r.get("status") == "ok"],
            min(25, len(records)),
        ):
            spec = Permutation(list(record["images"]))
            inverse = circuit_from_record(record).inverse()
            assert inverse.implements(spec.inverse())
