"""Tests for SynthesisOptions validation and presets."""

import pytest

from repro.synth.options import BASIC_OPTIONS, GREEDY_OPTIONS, SynthesisOptions


class TestDefaults:
    def test_paper_weights(self):
        options = SynthesisOptions()
        assert (options.alpha, options.beta, options.gamma) == (0.3, 0.6, 0.1)

    def test_weights_sum_to_one(self):
        options = SynthesisOptions()
        assert options.alpha + options.beta + options.gamma == pytest.approx(1)

    def test_default_has_no_heuristics(self):
        options = SynthesisOptions()
        assert options.greedy_k is None
        assert options.restart_steps is None

    def test_greedy_preset(self):
        assert GREEDY_OPTIONS.greedy_k == 1
        assert GREEDY_OPTIONS.restart_steps == 10_000

    def test_basic_preset_is_default(self):
        assert BASIC_OPTIONS == SynthesisOptions()


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("greedy_k", 0),
            ("max_gates", -1),
            ("restart_steps", 0),
            ("max_steps", 0),
            ("max_restarts", -1),
            ("time_limit", -1.0),
            ("growth_exempt_literals", -2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SynthesisOptions(**{field: value})

    def test_with_returns_copy(self):
        base = SynthesisOptions()
        changed = base.with_(greedy_k=3)
        assert changed.greedy_k == 3
        assert base.greedy_k is None

    def test_basic_strips_heuristics(self):
        options = GREEDY_OPTIONS.basic()
        assert options.greedy_k is None
        assert options.restart_steps is None

    def test_frozen(self):
        with pytest.raises(Exception):
            SynthesisOptions().alpha = 0.5
