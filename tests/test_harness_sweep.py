"""Sweep orchestration: resume, strict mode, metrics, env config."""

import pytest

from repro.harness import (
    HarnessConfig,
    RetryPolicy,
    UnsoundCircuitError,
    build_sweep_report,
    harness_from_env,
    probe_task,
    run_sweep,
)
from repro.obs import MetricsRegistry


def _mixed_tasks():
    return [
        probe_task("ok", meta={"label": "p0"}, namespace="p0"),
        probe_task("unsolved", meta={"label": "p1"}, namespace="p1"),
        probe_task("raise", meta={"label": "p2"}, namespace="p2"),
        probe_task("ok", meta={"label": "p3"}, namespace="p3"),
    ]


class TestInlineSweep:
    def test_failures_are_contained_and_counted(self):
        report = run_sweep("mix", _mixed_tasks())
        assert report.counts == {"ok": 2, "unsolved": 1, "crash": 1}
        assert report.completed == report.total == 4
        assert report.failed == 2
        assert not report.interrupted

    def test_as_dict_lists_every_status(self):
        report = run_sweep("mix", [probe_task("ok")])
        snapshot = report.as_dict()
        assert snapshot["counts"]["hang"] == 0
        assert snapshot["counts"]["ok"] == 1

    def test_inline_retry_ladder(self):
        report = run_sweep(
            "flaky",
            [probe_task("flaky", ok_after=3)],
            config=HarnessConfig(retry=RetryPolicy(max_retries=3)),
        )
        assert report.counts == {"ok": 1}
        assert report.retries == 2


class TestLedgerResume:
    def test_limit_interrupts_and_resume_completes(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        tasks = _mixed_tasks()
        config = HarnessConfig(ledger_path=path)

        first = run_sweep("mix", tasks, config=config, limit=2)
        assert first.interrupted
        assert first.completed == 2 and first.replayed == 0

        second = run_sweep("mix", tasks, config=config)
        assert not second.interrupted
        assert second.completed == 4
        assert second.replayed == 2
        # Combined counts equal an uninterrupted run.
        assert second.counts == {"ok": 2, "unsolved": 1, "crash": 1}

    def test_replayed_outcomes_reach_on_outcome(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        tasks = [probe_task("ok", gate_count=9)]
        config = HarnessConfig(ledger_path=path)
        run_sweep("replay", tasks, config=config)
        seen = []
        run_sweep("replay", tasks, config=config,
                  on_outcome=lambda t, o: seen.append(o))
        [outcome] = seen
        assert outcome.gate_count == 9

    def test_fully_replayed_sweep_runs_nothing(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        tasks = _mixed_tasks()
        config = HarnessConfig(ledger_path=path)
        run_sweep("mix", tasks, config=config)
        report = run_sweep("mix", tasks, config=config)
        assert report.replayed == report.completed == 4


class TestStrictMode:
    def test_unsound_raises_after_recording(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        tasks = [probe_task("unsound", meta={"label": "bad-probe"})]
        config = HarnessConfig(strict=True, ledger_path=path)
        with pytest.raises(UnsoundCircuitError, match="bad-probe"):
            run_sweep("strict", tasks, config=config)
        # The alarm still checkpointed the outcome first.
        from repro.harness import SweepLedger

        loaded = SweepLedger(path, sweep="strict").load()
        assert [o.status for o in loaded.values()] == ["unsound"]

    def test_unsound_error_is_an_assertion_error(self):
        assert issubclass(UnsoundCircuitError, AssertionError)

    def test_non_strict_records_and_continues(self):
        report = run_sweep(
            "lax", [probe_task("unsound"), probe_task("ok")]
        )
        assert report.counts == {"unsound": 1, "ok": 1}


class TestMetricsIntegration:
    def test_outcome_counters_land_in_registry(self):
        registry = MetricsRegistry()
        config = HarnessConfig(
            metrics=registry, retry=RetryPolicy(max_retries=1)
        )
        tasks = _mixed_tasks() + [probe_task("flaky", ok_after=2,
                                             namespace="p4")]
        run_sweep("metrics", tasks, config=config)
        snapshot = registry.as_dict()
        assert snapshot["sweep_outcome_ok"]["value"] == 3
        assert snapshot["sweep_outcome_unsolved"]["value"] == 1
        assert snapshot["sweep_tasks_total"]["value"] == 5
        assert snapshot["sweep_retries_total"]["value"] >= 1

    def test_hotops_aggregated_inline_and_isolated(self):
        import random

        from repro.harness.tasks import permutation_task
        from repro.synth.options import SynthesisOptions

        rng = random.Random(7)
        options = SynthesisOptions(max_steps=2_000)
        tasks = []
        for index in range(2):
            images = list(range(8))
            rng.shuffle(images)
            tasks.append(permutation_task(
                images, options=options, namespace=f"t:{index}"
            ))

        inline = MetricsRegistry()
        run_sweep("hot", tasks, config=HarnessConfig(metrics=inline))
        inline_subs = inline.counter("hotop_substitutions_applied").value
        assert inline_subs > 0
        assert inline.counter("hotop_queue_pops").value > 0

        isolated = MetricsRegistry()
        run_sweep(
            "hot", tasks,
            config=HarnessConfig(metrics=isolated, isolate=True, jobs=2),
        )
        # Hot-op totals cross the subprocess result channel losslessly.
        assert isolated.counter(
            "hotop_substitutions_applied"
        ).value == inline_subs

    def test_hotops_not_recounted_on_replay(self, tmp_path):
        import random

        from repro.harness.tasks import permutation_task
        from repro.synth.options import SynthesisOptions

        rng = random.Random(7)
        images = list(range(8))
        rng.shuffle(images)
        task = permutation_task(
            images, options=SynthesisOptions(max_steps=2_000),
            namespace="replay",
        )
        ledger = str(tmp_path / "ledger.jsonl")

        first = MetricsRegistry()
        run_sweep("hot", [task],
                  config=HarnessConfig(metrics=first, ledger_path=ledger))
        assert first.counter("hotop_substitutions_applied").value > 0

        second = MetricsRegistry()
        report = run_sweep(
            "hot", [task],
            config=HarnessConfig(metrics=second, ledger_path=ledger),
        )
        assert report.replayed == 1
        assert second.get("hotop_substitutions_applied") is None

    def test_build_sweep_report_document(self):
        registry = MetricsRegistry()
        report = run_sweep(
            "doc", [probe_task("ok")], config=HarnessConfig(metrics=registry)
        )
        document = build_sweep_report(report, registry)
        assert document["schema"] == "rmrls-sweep-report"
        assert document["sweep"]["counts"]["ok"] == 1
        assert document["metrics"]["sweep_outcome_ok"]["value"] == 1
        assert "environment" in document


class TestDriverEquivalence:
    def test_table23_isolated_matches_inline(self):
        from repro.experiments.table23 import run_random_functions
        from repro.synth.options import SynthesisOptions

        options = SynthesisOptions(dedupe_states=True, max_steps=5000)
        inline = run_random_functions(3, 3, options, seed=11)
        isolated = run_random_functions(
            3, 3, options, seed=11, harness=HarnessConfig(isolate=True)
        )
        assert inline.histogram == isolated.histogram
        assert inline.failed == isolated.failed
        assert inline.attempted == isolated.attempted

    def test_lazy_package_exports(self):
        import repro

        assert repro.HarnessConfig is HarnessConfig
        assert repro.run_sweep is run_sweep


class TestStoreSeeding:
    def test_sweep_seeds_the_store_deduplicated(self, tmp_path):
        from repro.harness import permutation_task
        from repro.store import CircuitStore
        from repro.synth.options import SynthesisOptions

        options = SynthesisOptions(dedupe_states=True, max_steps=40_000)
        specs = [
            [0, 2, 1, 3, 4, 6, 5, 7],   # swap(a,b) on 3 lines
            [0, 4, 2, 6, 1, 5, 3, 7],   # the same class, relabeled
            [1, 0, 3, 2, 5, 4, 7, 6],   # NOT(a)
        ]
        tasks = [
            permutation_task(spec, options=options, namespace=f"s{i}")
            for i, spec in enumerate(specs)
        ]
        registry = MetricsRegistry()
        config = HarnessConfig(
            store_path=str(tmp_path / "store"), metrics=registry
        )
        report = run_sweep("seed", tasks, config=config)
        assert report.counts == {"ok": 3}
        store = CircuitStore(str(tmp_path / "store"), read_only=True)
        assert len(store) == 2  # the relabeled twin deduplicated
        metrics = registry.as_dict()
        assert metrics["store_seeded_total"]["value"] == 2
        assert metrics["store_seed_duplicates_total"]["value"] == 1

    def test_replayed_outcomes_reseed_idempotently(self, tmp_path):
        from repro.harness import permutation_task
        from repro.store import CircuitStore
        from repro.synth.options import SynthesisOptions

        options = SynthesisOptions(dedupe_states=True, max_steps=40_000)
        tasks = [permutation_task([0, 2, 1, 3], options=options)]
        config = HarnessConfig(
            ledger_path=str(tmp_path / "ledger.jsonl"),
            store_path=str(tmp_path / "store"),
        )
        run_sweep("seed", tasks, config=config)
        second = run_sweep("seed", tasks, config=config)
        assert second.replayed == 1
        store = CircuitStore(str(tmp_path / "store"), read_only=True)
        assert len(store) == 1
        assert store.verify(deep=True)["ok"]


class TestHarnessFromEnv:
    def test_no_vars_means_no_harness(self):
        assert harness_from_env({}) is None

    def test_full_configuration(self):
        config = harness_from_env({
            "RMRLS_ISOLATE": "1",
            "RMRLS_SWEEP_JOBS": "3",
            "RMRLS_RETRIES": "2",
            "RMRLS_MEM_LIMIT_MB": "512",
            "RMRLS_WALL_LIMIT": "30",
            "RMRLS_LEDGER": "/tmp/x.jsonl",
            "RMRLS_LEDGER_FSYNC": "1",
            "RMRLS_STORE": "/tmp/store",
        })
        assert config.isolate and config.jobs == 3
        assert config.retry.max_retries == 2
        assert config.mem_limit_mb == 512
        assert config.wall_seconds == 30.0
        assert config.ledger_path == "/tmp/x.jsonl"
        assert config.ledger_fsync
        assert config.store_path == "/tmp/store"

    def test_store_alone_triggers_a_harness(self):
        config = harness_from_env({"RMRLS_STORE": "/tmp/store"})
        assert config is not None and config.store_path == "/tmp/store"

    def test_falsy_isolate_spellings(self):
        assert harness_from_env({"RMRLS_ISOLATE": "0"}) is None
        config = harness_from_env(
            {"RMRLS_ISOLATE": "0", "RMRLS_RETRIES": "1"}
        )
        assert config is not None and not config.isolate

    def test_config_with_replacement(self):
        base = HarnessConfig()
        assert base.with_(strict=True).strict
        with pytest.raises(ValueError):
            HarnessConfig(jobs=0)
