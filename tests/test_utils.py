"""Tests for timers, table rendering, and term utilities."""

import pytest

from repro.pprm.term import (
    CONSTANT_ONE,
    contains_variable,
    evaluate_term,
    format_term,
    literal_count,
    term_product,
    term_sort_key,
    variable_index,
    variable_name,
    without_variable,
)
from repro.utils.tables import format_histogram, format_table
from repro.utils.timer import Deadline, Stopwatch


class TestTerm:
    def test_constant(self):
        assert format_term(CONSTANT_ONE) == "1"
        assert literal_count(CONSTANT_ONE) == 0
        assert evaluate_term(CONSTANT_ONE, 0) == 1

    def test_format(self):
        assert format_term(0b101) == "ac"
        assert format_term(0b10) == "b"

    def test_names_roundtrip(self):
        for index in (0, 3, 25, 26, 100):
            assert variable_index(variable_name(index)) == index

    def test_variable_name_invalid(self):
        with pytest.raises(ValueError):
            variable_name(-1)
        with pytest.raises(ValueError):
            variable_index("$$")

    def test_contains_and_remove(self):
        assert contains_variable(0b101, 2)
        assert not contains_variable(0b101, 1)
        assert without_variable(0b101, 2) == 0b001
        assert without_variable(0b101, 1) == 0b101

    def test_product_idempotent(self):
        assert term_product(0b101, 0b110) == 0b111
        assert term_product(0b1, 0b1) == 0b1

    def test_evaluate(self):
        assert evaluate_term(0b011, 0b111) == 1
        assert evaluate_term(0b011, 0b101) == 0

    def test_sort_key_orders_by_degree(self):
        terms = [0b111, 0b1, CONSTANT_ONE, 0b011]
        assert sorted(terms, key=term_sort_key) == [0, 0b1, 0b011, 0b111]


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.is_expired()
        assert deadline.remaining() == float("inf")

    def test_expiry_with_fake_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert not deadline.is_expired()
        now[0] = 5.1
        assert deadline.is_expired()
        assert deadline.remaining() < 0

    def test_restart(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        now[0] = 2.0
        deadline.restart()
        assert not deadline.is_expired()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1)

    def test_elapsed_monotone(self):
        now = [0.0]
        deadline = Deadline(10, clock=lambda: now[0])
        now[0] = 3.0
        assert deadline.elapsed() == 3.0

    def test_stopwatch(self):
        now = [1.0]
        watch = Stopwatch(clock=lambda: now[0])
        now[0] = 4.0
        assert watch.elapsed() == 3.0
        watch.restart()
        assert watch.elapsed() == 0.0

    def test_stopwatch_freezes_on_exit(self):
        now = [0.0]
        with Stopwatch(clock=lambda: now[0]) as watch:
            now[0] = 2.5
        now[0] = 100.0
        assert watch.elapsed() == 2.5
        assert watch.stop_time == 2.5
        assert not watch.running

    def test_stopwatch_stop_is_idempotent(self):
        now = [0.0]
        watch = Stopwatch(clock=lambda: now[0])
        now[0] = 1.0
        assert watch.stop() == 1.0
        now[0] = 9.0
        assert watch.stop() == 1.0
        assert watch.elapsed() == 1.0

    def test_stopwatch_restart_resumes_ticking(self):
        now = [0.0]
        watch = Stopwatch(clock=lambda: now[0])
        watch.stop()
        watch.restart()
        assert watch.running
        now[0] = 4.0
        assert watch.elapsed() == 4.0


class TestTables:
    def test_basic_table(self):
        text = format_table(["name", "count"], [("abc", 3), ("d", 10)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "abc" in lines[2]
        assert lines[3].endswith("10")

    def test_none_renders_dash(self):
        text = format_table(["a"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(["x"], [(6.104,)])
        assert "6.10" in text

    def test_title(self):
        text = format_table(["a"], [], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_histogram(self):
        text = format_histogram({3: 5, 1: 2}, label="size")
        lines = text.splitlines()
        assert "1" in lines[2] and "3" in lines[3]

    def test_right_aligned_first_column(self):
        text = format_table(
            ["n", "v"], [(1, 2), (100, 3)], align_first_left=False
        )
        rows = text.splitlines()[2:]
        # Right-aligned: the single-digit row is padded on the left.
        assert rows[0].startswith("  1")

    def test_empty_table_renders_headers(self):
        text = format_table(["alpha", "beta"], [])
        assert "alpha" in text and "beta" in text
