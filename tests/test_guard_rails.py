"""In-process guard rails: memory caps, visited-table cap, Ctrl-C.

The search must degrade gracefully, never die: node/queue caps end the
run with finish reason ``memory_limit``, the visited-table cap sheds
new entries (counted, never fatal), and ``KeyboardInterrupt`` yields a
partial result with reason ``interrupted``.
"""

import pytest

from repro.functions.permutation import Permutation
from repro.obs.observer import SearchObserver
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

HARD_SPEC = Permutation([7, 1, 4, 3, 0, 2, 6, 5])


class TestMemoryLimitFinish:
    def test_max_nodes_trips_memory_limit(self):
        result = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=50_000,
                             max_nodes=25),
        )
        assert result.stats.finish_reason == "memory_limit"
        assert result.stats.memory_limited
        assert result.stats.nodes_created <= 25 + 50

    def test_max_queue_size_trips_memory_limit(self):
        result = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=50_000,
                             max_queue_size=5),
        )
        assert result.stats.finish_reason == "memory_limit"

    def test_generous_caps_do_not_interfere(self):
        capped = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=50_000,
                             max_nodes=10**7, max_queue_size=10**7,
                             max_visited=10**7),
        )
        plain = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=50_000),
        )
        assert capped.solved and plain.solved
        assert capped.gate_count == plain.gate_count
        assert capped.stats.steps == plain.stats.steps

    def test_options_validate_caps(self):
        with pytest.raises(ValueError):
            SynthesisOptions(max_nodes=0)
        with pytest.raises(ValueError):
            SynthesisOptions(max_queue_size=0)
        with pytest.raises(ValueError):
            SynthesisOptions(max_visited=0)


class TestVisitedCap:
    def test_overflow_counted_and_search_survives(self):
        result = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=2_000,
                             max_visited=8),
        )
        assert result.stats.visited_overflows > 0

    def test_no_cap_means_no_overflows(self):
        result = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=2_000),
        )
        assert result.stats.visited_overflows == 0

    def test_overflow_reaches_metrics(self):
        from repro.obs import MetricsObserver, MetricsRegistry

        registry = MetricsRegistry()
        synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=2_000,
                             max_visited=8,
                             observers=(MetricsObserver(registry),)),
        )
        counter = registry.get("search_guard_visited_overflow")
        assert counter is not None and counter.value > 0


class _InterruptAfter(SearchObserver):
    def __init__(self, steps: int):
        self.remaining = steps

    def on_step(self, step, node, queue_size):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


class TestInterrupted:
    def test_ctrl_c_yields_partial_result(self):
        result = synthesize(
            HARD_SPEC,
            SynthesisOptions(dedupe_states=True, max_steps=50_000,
                             observers=(_InterruptAfter(5),)),
        )
        assert result.stats.finish_reason == "interrupted"
        assert result.stats.interrupted
        assert result.circuit is None
        assert result.stats.steps <= 6

    def test_interrupt_maps_to_interrupted_status(self):
        from repro.harness import status_from_finish_reason

        assert (
            status_from_finish_reason("interrupted", False) == "interrupted"
        )

    def test_sweep_stops_cleanly_and_resume_rides_the_ledger(self, tmp_path):
        from repro.harness import HarnessConfig, probe_task, run_sweep

        path = str(tmp_path / "ledger.jsonl")
        tasks = [
            probe_task("ok", namespace="i0"),
            probe_task("interrupt", namespace="i1"),
            probe_task("ok", namespace="i2"),
        ]
        config = HarnessConfig(ledger_path=path)
        first = run_sweep("interrupt", tasks, config=config)
        assert first.interrupted
        assert first.completed == 1  # the interrupt itself is not recorded

        # On resume the interrupted task re-runs; make it succeed now.
        tasks[1] = probe_task("ok", namespace="i1")
        second = run_sweep("interrupt", tasks, config=config)
        assert not second.interrupted
        assert second.replayed == 1 and second.completed == 3
