"""Merge conflict rules, torn ledgers, and byte-identical coverage."""

import json

import pytest

from repro.functions.permutation import Permutation
from repro.harness import SweepLedger, TaskOutcome
from repro.io.real_format import dump_real
from repro.sweeps import (
    MergeError,
    build_manifest,
    circuit_from_record,
    load_coverage,
    merge_ledgers,
    merge_to_coverage,
    run_shard,
    shard_ledger_path,
    validate_coverage,
)
from repro.synth.rmrls import synthesize


def _solve(images):
    # Table I protocol options: step-capped with state dedupe, matching
    # what the sweep itself runs (library defaults can search
    # unboundedly long proving optimality).
    from repro.experiments.common import TABLE1_OPTIONS

    result = synthesize(Permutation(list(images)), TABLE1_OPTIONS)
    assert result.solved
    return result.circuit


def _ok_outcome(manifest, cls, circuit):
    return TaskOutcome(
        task_id=manifest.task_for_class(cls).task_id,
        status="ok",
        gate_count=circuit.gate_count(),
        quantum_cost=circuit.quantum_cost(),
        circuit=dump_real(circuit),
    )


def _write_ledger(path, manifest, outcomes, shard="shard1of1"):
    with SweepLedger(
        str(path), sweep=f"{manifest.namespace}:{shard}"
    ) as ledger:
        for outcome in outcomes:
            ledger.record(outcome)
    return str(path)


def _padded(circuit):
    """A strictly worse but still sound circuit: append a cancelling
    pair of the first gate (or a NOT twice on line 0)."""
    gate = circuit.gates[0] if circuit.gate_count() else None
    if gate is None:
        from repro.gates import not_gate

        gate = not_gate(0)
    return circuit.appended(gate).appended(gate)


@pytest.fixture(scope="module")
def manifest():
    return build_manifest("perm2", shards=1, limit=3)


@pytest.fixture(scope="module")
def solved(manifest):
    classes = manifest.universe_object().classes[: manifest.items]
    return {cls.class_rank: _solve(cls.images) for cls in classes}


def _full_outcomes(manifest, solved, override=None):
    classes = manifest.universe_object().classes[: manifest.items]
    outcomes = []
    for cls in classes:
        if override is not None and cls.class_rank in override:
            outcomes.append(override[cls.class_rank])
        else:
            outcomes.append(
                _ok_outcome(manifest, cls, solved[cls.class_rank])
            )
    return outcomes


class TestConflictRules:
    def test_min_gate_count_wins_with_claims_retained(
        self, tmp_path, manifest, solved
    ):
        classes = manifest.universe_object().classes[: manifest.items]
        target = classes[1]
        worse = _padded(solved[1])
        a = _write_ledger(
            tmp_path / "a.jsonl", manifest,
            _full_outcomes(manifest, solved), shard="shard1of2",
        )
        b = _write_ledger(
            tmp_path / "b.jsonl", manifest,
            _full_outcomes(
                manifest, solved,
                {1: _ok_outcome(manifest, target, worse)},
            ),
            shard="shard2of2",
        )
        records, report = merge_ledgers(manifest, [a, b])
        record = records[1]
        assert record["gates"] == solved[1].gate_count()
        assert {claim["gates"] for claim in record["claims"]} == {
            solved[1].gate_count(), worse.gate_count(),
        }
        assert report["conflicts"] == 1
        assert circuit_from_record(record).implements(
            Permutation(list(target.images))
        )

    def test_unsound_claim_dropped_for_next_best(
        self, tmp_path, manifest, solved
    ):
        classes = manifest.universe_object().classes[: manifest.items]
        target = classes[2]
        # A lying claim: fewer gates, but the circuit solves class 0.
        lying = TaskOutcome(
            task_id=manifest.task_for_class(target).task_id,
            status="ok",
            gate_count=solved[0].gate_count(),
            circuit=dump_real(solved[0]),
        )
        a = _write_ledger(
            tmp_path / "a.jsonl", manifest,
            _full_outcomes(manifest, solved),
        )
        b = _write_ledger(
            tmp_path / "b.jsonl", manifest,
            _full_outcomes(manifest, solved, {2: lying}),
            shard="shard1of9",
        )
        records, report = merge_ledgers(manifest, [a, b])
        assert report["dropped_unsound"] >= 1
        assert records[2]["gates"] == solved[2].gate_count()

    def test_all_claims_unsound_records_unsound_status(
        self, tmp_path, manifest, solved
    ):
        classes = manifest.universe_object().classes[: manifest.items]
        target = classes[2]
        lying = TaskOutcome(
            task_id=manifest.task_for_class(target).task_id,
            status="ok",
            gate_count=0,
            circuit=dump_real(solved[0]),
        )
        a = _write_ledger(
            tmp_path / "a.jsonl", manifest,
            _full_outcomes(manifest, solved, {2: lying}),
        )
        records, report = merge_ledgers(manifest, [a])
        assert records[2]["status"] == "unsound"
        assert "gates" not in records[2]

    def test_failure_claims_resolve_deterministically(
        self, tmp_path, manifest, solved
    ):
        classes = manifest.universe_object().classes[: manifest.items]
        target = classes[0]
        unsolved = TaskOutcome(
            task_id=manifest.task_for_class(target).task_id,
            status="unsolved",
        )
        timeout = TaskOutcome(
            task_id=manifest.task_for_class(target).task_id,
            status="timeout",
        )
        a = _write_ledger(
            tmp_path / "a.jsonl", manifest,
            _full_outcomes(manifest, solved, {0: timeout}),
        )
        b = _write_ledger(
            tmp_path / "b.jsonl", manifest,
            _full_outcomes(manifest, solved, {0: unsolved}),
            shard="shard1of3",
        )
        records, _ = merge_ledgers(manifest, [a, b])
        assert records[0]["status"] == "unsolved"
        assert {claim["status"] for claim in records[0]["claims"]} == {
            "unsolved", "timeout",
        }


class TestTornAndForeignLedgers:
    def test_torn_ledger_line_falls_back_to_other_shard(
        self, tmp_path, manifest, solved
    ):
        a = _write_ledger(
            tmp_path / "a.jsonl", manifest,
            _full_outcomes(manifest, solved),
        )
        b = _write_ledger(
            tmp_path / "b.jsonl", manifest,
            _full_outcomes(
                manifest, solved,
                {1: _ok_outcome(
                    manifest,
                    manifest.universe_object().classes[1],
                    _padded(solved[1]),
                )},
            ),
            shard="shard2of2",
        )
        # Tear ledger b mid-write: its final line is half gone.
        content = open(b).read()
        open(b, "w").write(content[: len(content) - 40])
        records, report = merge_ledgers(manifest, [a, b])
        assert report["skipped_lines"] >= 1
        # Every class still resolves from the intact claims.
        assert all(record["status"] == "ok" for record in records)
        assert records[1]["gates"] == solved[1].gate_count()

    def test_foreign_plan_ledger_refused(self, tmp_path, manifest, solved):
        foreign = build_manifest(
            "perm2", shards=1, limit=3, namespace="other-plan:v1"
        )
        path = _write_ledger(
            tmp_path / "foreign.jsonl", foreign,
            _full_outcomes(foreign, solved),
        )
        with pytest.raises(MergeError, match="refusing to merge"):
            merge_ledgers(manifest, [path])

    def test_missing_class_strict_raises_lenient_records(
        self, tmp_path, manifest, solved
    ):
        partial = _write_ledger(
            tmp_path / "partial.jsonl", manifest,
            _full_outcomes(manifest, solved)[:2],
        )
        with pytest.raises(MergeError, match="no terminal outcome"):
            merge_ledgers(manifest, [partial])
        records, report = merge_ledgers(
            manifest, [partial], strict=False
        )
        assert report["missing"] == 1
        assert records[2]["status"] == "missing"


class TestByteIdenticalCoverage:
    def test_merge_is_independent_of_ledger_order_and_layout(
        self, tmp_path
    ):
        manifest_a = build_manifest("perm2", shards=3)
        out = str(tmp_path / "shards")
        for index in range(3):
            run_shard(manifest_a, index, out)
        ledgers = [
            shard_ledger_path(out, manifest_a, index)
            for index in range(3)
        ]
        cov_a = str(tmp_path / "a.jsonl")
        cov_b = str(tmp_path / "b.jsonl")
        merge_to_coverage(manifest_a, ledgers, cov_a)
        merge_to_coverage(manifest_a, list(reversed(ledgers)), cov_b)
        assert open(cov_a, "rb").read() == open(cov_b, "rb").read()

        # A different shard layout, fed by adoption, merges to the
        # same bytes: the coverage is a function of the outcome set.
        manifest_b = build_manifest("perm2", shards=2)
        out_b = str(tmp_path / "shards2")
        for index in range(2):
            run_shard(manifest_b, index, out_b, adopt=ledgers)
        cov_c = str(tmp_path / "c.jsonl")
        merge_to_coverage(
            manifest_b,
            [shard_ledger_path(out_b, manifest_b, i) for i in range(2)],
            cov_c,
        )
        assert open(cov_a, "rb").read() == open(cov_c, "rb").read()

    def test_summary_and_validation_round_trip(self, tmp_path):
        manifest = build_manifest("perm2", shards=2)
        out = str(tmp_path / "shards")
        for index in range(2):
            run_shard(manifest, index, out)
        cov = str(tmp_path / "coverage2.jsonl")
        summary = merge_to_coverage(
            manifest,
            [shard_ledger_path(out, manifest, i) for i in range(2)],
            cov,
            store_path=str(tmp_path / "store"),
        )
        assert summary["classes"] == 14
        assert summary["functions"] == 24
        assert summary["store"]["stored"] == 14
        report = validate_coverage(cov, replay=None)
        assert report["complete"] and report["replayed"] == 14
        header, records = load_coverage(cov)
        assert header["body_digest"] == summary["body_digest"]
        sidecar = json.load(open(summary["summary_path"]))
        assert sidecar["body_digest"] == summary["body_digest"]

    def test_coverage_tamper_detected(self, tmp_path):
        manifest = build_manifest("perm2", shards=1)
        out = str(tmp_path / "shards")
        run_shard(manifest, 0, out)
        cov = str(tmp_path / "coverage2.jsonl")
        merge_to_coverage(
            manifest, [shard_ledger_path(out, manifest, 0)], cov
        )
        lines = open(cov).read().splitlines()
        record = json.loads(lines[5])
        record["gates"] = 0  # oracle weakening must not go unnoticed
        lines[5] = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
        open(cov, "w").write("\n".join(lines) + "\n")
        from repro.sweeps import CoverageError

        with pytest.raises(CoverageError, match="checksum"):
            load_coverage(cov)
