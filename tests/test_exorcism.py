"""Tests for the mini-EXORCISM ESOP minimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.esop.cover import EsopCover
from repro.esop.cube import Cube
from repro.esop.exorcism import exorlink_two, merge_distance_one, minimize

truth_vectors = st.lists(st.integers(0, 1), min_size=16, max_size=16)


class TestDistanceOneMerge:
    def test_complement_pair_drops_literal(self):
        # xC + x'C = C.
        merged = merge_distance_one(
            Cube.from_string("11"), Cube.from_string("01")
        )
        assert merged == Cube.from_string("-1")

    def test_literal_and_free(self):
        # xC + C = x'C.
        merged = merge_distance_one(
            Cube.from_string("11"), Cube.from_string("-1")
        )
        assert merged == Cube.from_string("01")

    def test_merge_is_exact(self):
        a = Cube.from_string("1-0")
        b = Cube.from_string("0-0")
        merged = merge_distance_one(a, b)
        for m in range(8):
            assert merged.evaluate(m) == a.evaluate(m) ^ b.evaluate(m)

    def test_wrong_distance_rejected(self):
        with pytest.raises(ValueError):
            merge_distance_one(Cube.from_string("11"), Cube.from_string("00"))


class TestExorlinkTwo:
    @pytest.mark.parametrize(
        "first,second",
        [("1-0", "010"), ("11", "00"), ("1-1", "011"), ("0--", "-1-")],
    )
    def test_reshapes_are_equivalent(self, first, second):
        a = Cube.from_string(first)
        b = Cube.from_string(second)
        assert a.distance(b) == 2
        reshapes = exorlink_two(a, b)
        assert len(reshapes) == 2
        for left, right in reshapes:
            for m in range(8):
                assert (
                    left.evaluate(m) ^ right.evaluate(m)
                    == a.evaluate(m) ^ b.evaluate(m)
                )

    def test_wrong_distance_rejected(self):
        with pytest.raises(ValueError):
            exorlink_two(Cube.from_string("11"), Cube.from_string("10"))

    def test_produces_alternatives(self):
        a = Cube.from_string("11")
        b = Cube.from_string("00")
        assert len(exorlink_two(a, b)) >= 1


class TestMinimize:
    def test_cancels_duplicates(self):
        cover = EsopCover.from_strings(2, ["11", "11"])
        assert minimize(cover).cube_count() == 0

    def test_merges_distance_one(self):
        cover = EsopCover.from_strings(2, ["11", "01"])
        result = minimize(cover)
        assert result.cube_count() == 1

    def test_parity_function_minimal_already(self):
        cover = EsopCover.from_truth_vector([0, 1, 1, 0])
        result = minimize(cover)
        assert result.cube_count() == 2
        assert result.equivalent_to(cover)

    def test_and_from_minterms(self):
        # Minterm cover of x0 x1 x2 is already one cube after merging
        # the single minterm... and of f = x0: 4 minterms -> 1 cube.
        cover = EsopCover.from_truth_vector([0, 1] * 4)
        result = minimize(cover)
        assert result.cube_count() == 1
        assert result.equivalent_to(cover)

    @settings(max_examples=40, deadline=None)
    @given(truth_vectors)
    def test_equivalence_preserved(self, values):
        cover = EsopCover.from_truth_vector(values)
        result = minimize(cover)
        assert result.truth_vector() == list(values)
        assert result.cube_count() <= cover.cube_count()

    @settings(max_examples=15, deadline=None)
    @given(truth_vectors)
    def test_improves_on_minterm_form(self, values):
        """For non-trivial functions the minimized cover should rarely
        stay at the raw minterm count; at minimum it never grows."""
        cover = EsopCover.from_truth_vector(values)
        result = minimize(cover)
        assert result.cube_count() <= cover.cube_count()

    def test_majority_has_compact_esop(self):
        # maj(a,b,c) = ab + ac + bc with XOR needs <= 4 cubes; the
        # minimizer should get below the 4 minterms.
        values = [0, 0, 0, 1, 0, 1, 1, 1]
        result = minimize(EsopCover.from_truth_vector(values))
        assert result.truth_vector() == values
        assert result.cube_count() <= 4
