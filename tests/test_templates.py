"""Tests for template/peephole post-processing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.random_circuits import random_circuit
from repro.gates.toffoli import ToffoliGate
from repro.postprocess.templates import (
    cancel_duplicates,
    peephole_optimize,
    simplify,
)


def _random_circuit_strategy(num_lines=4, max_gates=10):
    def build(seeds):
        gates = []
        for target, controls in seeds:
            controls &= ((1 << num_lines) - 1) & ~(1 << target)
            gates.append(ToffoliGate(controls, target))
        return Circuit(num_lines, gates)

    return st.builds(
        build,
        st.lists(
            st.tuples(
                st.integers(0, num_lines - 1), st.integers(0, 15)
            ),
            max_size=max_gates,
        ),
    )


class TestCancelDuplicates:
    def test_adjacent_pair_cancels(self):
        circuit = Circuit.parse(3, "TOF3(a, b, c) TOF3(a, b, c)")
        assert cancel_duplicates(circuit).gate_count() == 0

    def test_commuting_separation_cancels(self):
        # The middle CNOT shares only controls with the pair.
        circuit = Circuit.parse(3, "TOF2(a, c) TOF2(a, b) TOF2(a, c)")
        assert cancel_duplicates(circuit).gate_count() == 1

    def test_blocking_gate_prevents_cancellation(self):
        # NOT(a) rewrites the control of the pair; no cancellation.
        circuit = Circuit.parse(2, "TOF2(a, b) TOF1(a) TOF2(a, b)")
        assert cancel_duplicates(circuit).gate_count() == 3

    def test_cascaded_cancellations(self):
        circuit = Circuit.parse(
            2, "TOF1(a) TOF2(a, b) TOF2(a, b) TOF1(a)"
        )
        assert cancel_duplicates(circuit).gate_count() == 0

    @settings(max_examples=60, deadline=None)
    @given(_random_circuit_strategy())
    def test_preserves_function(self, circuit):
        reduced = cancel_duplicates(circuit)
        assert reduced.gate_count() <= circuit.gate_count()
        assert reduced.to_permutation() == circuit.to_permutation()


class TestPeephole:
    def test_rewrites_suboptimal_window(self):
        # NOT NOT CNOT -> CNOT.
        circuit = Circuit.parse(2, "TOF1(a) TOF1(a) TOF2(a, b)")
        assert peephole_optimize(circuit).gate_count() == 1

    def test_leaves_optimal_swap_alone(self):
        circuit = Circuit.parse(2, "TOF2(a, b) TOF2(b, a) TOF2(a, b)")
        assert peephole_optimize(circuit).gate_count() == 3

    def test_narrow_window_in_wide_circuit(self):
        circuit = Circuit.parse(
            5, "TOF1(e) TOF2(a, b) TOF2(a, b) TOF1(e)"
        )
        assert simplify(circuit).gate_count() == 0

    def test_wide_windows_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            peephole_optimize(Circuit.identity(4), max_window_lines=4)

    @settings(max_examples=30, deadline=None)
    @given(_random_circuit_strategy())
    def test_preserves_function(self, circuit):
        optimized = peephole_optimize(circuit)
        assert optimized.gate_count() <= circuit.gate_count()
        assert optimized.to_permutation() == circuit.to_permutation()


class TestSimplify:
    def test_identity_stays_empty(self):
        assert simplify(Circuit.identity(3)).gate_count() == 0

    def test_soundness_on_random_circuits(self, rng):
        for _ in range(25):
            circuit = random_circuit(4, rng.randint(1, 12), rng)
            simplified = simplify(circuit)
            assert simplified.to_permutation() == circuit.to_permutation()
            assert simplified.gate_count() <= circuit.gate_count()

    def test_reduces_padded_synthesis_output(self, fig1_spec):
        """The paper's 6.10 -> 6.05 template effect: padding a minimal
        circuit with junk must be fully undone."""
        base = Circuit.parse(3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)")
        padded = Circuit(
            3,
            list(base.gates)
            + [ToffoliGate(0, 2), ToffoliGate(0, 2)],
        )
        assert simplify(padded) == simplify(base)
        assert simplify(padded).gate_count() == 3
