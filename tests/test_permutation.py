"""Tests for repro.functions.permutation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.permutation import Permutation, random_permutation

perm8 = st.permutations(list(range(8)))


class TestValidation:
    def test_identity(self):
        p = Permutation.identity(2)
        assert p.is_identity()
        assert p.num_vars == 2

    def test_non_bijection_rejected(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1, 2])

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Permutation([0, 1, 2])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Permutation([0])

    def test_paper_notation(self, fig1_spec):
        assert str(fig1_spec) == "{1, 0, 7, 2, 3, 4, 5, 6}"


class TestGroupLaws:
    @given(perm8)
    def test_inverse_composes_to_identity(self, images):
        p = Permutation(images)
        assert (p @ p.inverse()).is_identity()
        assert (p.inverse() @ p).is_identity()

    @given(perm8, perm8)
    def test_composition_pointwise(self, first, second):
        f = Permutation(first)
        g = Permutation(second)
        composed = f @ g
        for m in range(8):
            assert composed(m) == f(g(m))

    def test_composition_width_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(2) @ Permutation.identity(3)

    def test_from_cycles(self):
        p = Permutation.from_cycles(3, [[0, 1]])
        assert p(0) == 1 and p(1) == 0 and p(2) == 2

    def test_from_cycles_overlap_rejected(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(3, [[0, 1], [1, 2]])

    def test_from_cycles_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(2, [[0, 4]])


class TestMeasures:
    def test_fixed_points(self, fig1_spec):
        assert fig1_spec.fixed_points() == 0
        assert Permutation.identity(3).fixed_points() == 8

    def test_hamming_complexity_identity(self):
        assert Permutation.identity(3).hamming_complexity() == 0

    def test_hamming_complexity_not_gate(self):
        # NOT on line 0 flips one bit per row.
        p = Permutation([1, 0, 3, 2])
        assert p.hamming_complexity() == 4

    def test_parity_of_transposition(self):
        p = Permutation.from_cycles(2, [[0, 1]])
        assert p.parity() == 1

    def test_parity_of_three_cycle(self):
        p = Permutation.from_cycles(2, [[0, 1, 2]])
        assert p.parity() == 0

    @given(perm8, perm8)
    def test_parity_is_homomorphism(self, first, second):
        f = Permutation(first)
        g = Permutation(second)
        assert (f @ g).parity() == (f.parity() + g.parity()) % 2


class TestOutputPermuted:
    def test_swap_wires(self):
        # f = identity; swapping output wires 0 and 1 relabels bits.
        p = Permutation.identity(2).output_permuted([1, 0])
        assert list(p.images) == [0, 2, 1, 3]

    def test_invalid_map_rejected(self):
        with pytest.raises(ValueError):
            Permutation.identity(2).output_permuted([0, 0])

    @given(perm8)
    def test_output_permutation_preserves_group(self, images):
        p = Permutation(images).output_permuted([2, 0, 1])
        assert sorted(p.images) == list(range(8))


class TestRandom:
    def test_random_is_permutation(self, rng):
        p = random_permutation(4, rng)
        assert sorted(p.images) == list(range(16))

    def test_random_deterministic_per_seed(self):
        import random

        a = random_permutation(3, random.Random(7))
        b = random_permutation(3, random.Random(7))
        assert a == b
