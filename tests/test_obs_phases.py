"""Tests for the sampling PhaseTimer."""

import pytest

from repro.obs.phases import SEARCH_PHASES, PhaseTimer
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.25
        return self.now


class TestPhaseTimer:
    def test_stride_sampling(self):
        timer = PhaseTimer(stride=4)
        sampled = [timer.start_step(step) for step in range(8)]
        assert sampled == [True, False, False, False, True, False, False, False]
        assert timer.total_steps == 8
        assert timer.sampled_steps == 2

    def test_stride_one_samples_everything(self):
        timer = PhaseTimer(stride=1)
        assert all(timer.start_step(step) for step in range(5))

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            PhaseTimer(stride=0)

    def test_add_and_estimate(self):
        timer = PhaseTimer(stride=8)
        timer.add("substitute", 0.5)
        timer.add("substitute", 0.25)
        assert timer.seconds["substitute"] == pytest.approx(0.75)
        assert timer.samples["substitute"] == 2
        assert timer.estimated_total("substitute") == pytest.approx(6.0)

    def test_phase_context_manager(self):
        timer = PhaseTimer(stride=1, clock=FakeClock())
        with timer.phase("queue"):
            pass
        assert timer.seconds["queue"] == pytest.approx(0.25)
        assert timer.samples["queue"] == 1

    def test_as_dict_structure(self):
        timer = PhaseTimer(stride=2)
        timer.start_step(0)
        timer.add("dedupe", 0.1)
        data = timer.as_dict()
        assert data["stride"] == 2
        assert data["total_steps"] == 1
        assert data["phases"]["dedupe"]["samples"] == 1
        assert data["phases"]["dedupe"]["estimated_total_seconds"] == (
            pytest.approx(0.2)
        )

    def test_render_lists_phases(self):
        timer = PhaseTimer(stride=4)
        timer.add("substitute", 0.2)
        timer.add("queue", 0.1)
        text = timer.render()
        assert "substitute" in text and "queue" in text and "1/4" in text

    def test_render_empty(self):
        assert "no phase samples" in PhaseTimer().render()


class TestSearchIntegration:
    def test_all_hot_phases_attributed(self, fig1_spec):
        timer = PhaseTimer(stride=1)
        result = synthesize(
            fig1_spec,
            SynthesisOptions(
                max_steps=5_000, dedupe_states=True, phase_timer=timer
            ),
        )
        assert result.solved
        assert timer.total_steps == result.stats.steps
        assert timer.sampled_steps == result.stats.steps
        for phase in SEARCH_PHASES:
            assert phase in timer.seconds, phase
            assert timer.seconds[phase] >= 0.0

    def test_disabled_by_default(self, fig1_spec):
        result = synthesize(fig1_spec, SynthesisOptions(max_steps=5_000))
        assert result.options.phase_timer is None

    def test_sampling_does_not_change_search(self, fig1_spec):
        options = SynthesisOptions(max_steps=5_000, dedupe_states=True)
        bare = synthesize(fig1_spec, options)
        timed = synthesize(
            fig1_spec, options.with_(phase_timer=PhaseTimer(stride=2))
        )
        assert bare.circuit == timed.circuit
        assert bare.stats.steps == timed.stats.steps
        assert bare.stats.nodes_created == timed.stats.nodes_created
