"""Tests for experiment sampling determinism."""

from repro.experiments.table1 import _three_variable_sample


class TestThreeVariableSampling:
    def test_deterministic_per_seed(self):
        a = _three_variable_sample(10, seed=7)
        b = _three_variable_sample(10, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = _three_variable_sample(10, seed=7)
        b = _three_variable_sample(10, seed=8)
        assert a != b

    def test_sample_size(self):
        assert len(_three_variable_sample(25, seed=1)) == 25

    def test_exhaustive_mode(self):
        specs = _three_variable_sample(None, seed=0)
        assert len(specs) == 40320
        # All distinct permutations.
        assert len({spec.images for spec in specs}) == 40320
