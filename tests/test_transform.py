"""Tests for repro.pprm.transform (the binary Mobius transform)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pprm.expansion import Expansion
from repro.pprm.transform import (
    expansion_to_truth_vector,
    inverse_mobius_transform,
    mobius_transform,
    truth_vector_to_expansion,
)

truth_vectors = st.lists(
    st.integers(0, 1), min_size=8, max_size=8
)


class TestMobius:
    def test_constant_one(self):
        assert mobius_transform([1, 1, 1, 1]) == [1, 0, 0, 0]

    def test_single_variable(self):
        # f = x0 over two variables: truth vector 0101.
        assert mobius_transform([0, 1, 0, 1]) == [0, 1, 0, 0]

    def test_and_function(self):
        # f = x0 x1: vector 0001 -> only coefficient 0b11.
        assert mobius_transform([0, 0, 0, 1]) == [0, 0, 0, 1]

    def test_xor_function(self):
        assert mobius_transform([0, 1, 1, 0]) == [0, 1, 1, 0]

    def test_bad_length(self):
        with pytest.raises(ValueError):
            mobius_transform([0, 1, 1])

    @given(truth_vectors)
    def test_involution(self, values):
        assert inverse_mobius_transform(mobius_transform(values)) == values

    @given(truth_vectors)
    def test_expansion_round_trip(self, values):
        expansion = truth_vector_to_expansion(values)
        assert expansion_to_truth_vector(expansion, 3) == values

    @given(truth_vectors)
    def test_expansion_evaluates_like_vector(self, values):
        expansion = truth_vector_to_expansion(values)
        for assignment, value in enumerate(values):
            assert expansion.evaluate(assignment) == value


class TestExpansionToVector:
    def test_rejects_oversized_terms(self):
        with pytest.raises(ValueError):
            expansion_to_truth_vector(Expansion([0b1000]), 2)

    def test_zero_expansion(self):
        assert expansion_to_truth_vector(Expansion.zero(), 2) == [0, 0, 0, 0]

    def test_paper_eq3_b_output(self, fig1_spec):
        # b_o = b + c + ac must tabulate to the b_o column of Fig. 1.
        system = fig1_spec.to_pprm()
        vector = expansion_to_truth_vector(system.output(1), 3)
        expected = [(fig1_spec(m) >> 1) & 1 for m in range(8)]
        assert vector == expected
