"""Tests for repro.gates.cost — cross-checked against Table IV."""

import pytest

from repro.circuits.circuit import Circuit
from repro.gates.cost import CostModel, gate_cost, toffoli_cost
from repro.gates.fredkin import FredkinGate
from repro.gates.toffoli import ToffoliGate


class TestCostTable:
    def test_elementary_gates(self):
        assert toffoli_cost(1) == 1
        assert toffoli_cost(2) == 1

    def test_three_bit_toffoli_is_five(self):
        """Sec. II-D: a realization of cost five exists [12]."""
        assert toffoli_cost(3) == 5

    def test_four_bit(self):
        assert toffoli_cost(4) == 13

    def test_exponential_no_free_line(self):
        assert toffoli_cost(5) == 29
        assert toffoli_cost(6) == 61

    def test_free_line_discount(self):
        assert toffoli_cost(5, has_free_line=True) == 26
        assert toffoli_cost(6, has_free_line=True) == 38
        assert toffoli_cost(7, has_free_line=True) == 50

    def test_discount_never_worse(self):
        for size in range(3, 20):
            assert toffoli_cost(size, True) <= toffoli_cost(size, False)

    def test_discount_disabled(self):
        model = CostModel(use_free_line_discount=False)
        assert model.toffoli_size_cost(5, True) == 29

    def test_bad_size(self):
        with pytest.raises(ValueError):
            toffoli_cost(0)


class TestGateCost:
    def test_gate_with_free_line(self):
        gate = ToffoliGate(0b1111, 4)  # TOF5
        assert gate_cost(gate, num_lines=5) == 29
        assert gate_cost(gate, num_lines=6) == 26

    def test_gate_too_wide_rejected(self):
        with pytest.raises(ValueError):
            gate_cost(ToffoliGate(0b110, 0), num_lines=2)

    def test_fredkin_cost_is_expansion_cost(self):
        gate = FredkinGate(0, 0, 1)
        assert gate_cost(gate, num_lines=2) == 3  # three CNOTs

    def test_unknown_gate_type(self):
        with pytest.raises(TypeError):
            gate_cost(object())


class TestTable4CrossChecks:
    """Arithmetic identities recoverable from Table IV (DESIGN.md)."""

    def test_rd32_row(self):
        # 4 gates, cost 8 -> 3 gates of cost 1 plus one TOF3.
        circuit = Circuit.parse(4, "TOF3(a, b, d) TOF2(a, b) TOF3(b, c, d) TOF2(b, c)")
        assert circuit.gate_count() == 4
        # two TOF3 (5 each) + two CNOT = 12; the paper's 8 uses one TOF3
        circuit2 = Circuit.parse(
            4, "TOF3(a, b, d) TOF2(a, b) TOF2(b, c) TOF1(c)"
        )
        assert circuit2.quantum_cost() == 8

    def test_317_row(self):
        # 6 gates cost 14 -> two TOF3 + four elementary.
        assert 2 * 5 + 4 * 1 == 14

    def test_4mod5_row(self):
        # 5 gates cost 13 -> two TOF3 + three elementary.
        assert 2 * 5 + 3 * 1 == 13

    def test_graycode_rows(self):
        # CNOT-only circuits: cost equals gate count.
        circuit = Circuit(6, [ToffoliGate(1 << (i + 1), i) for i in range(5)])
        assert circuit.quantum_cost() == circuit.gate_count() == 5
