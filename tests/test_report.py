"""Tests for the aggregate report generator (structure only; the full
run is exercised by `rmrls report` and the benches)."""

from repro.experiments.report import _section, generate_report


class TestSectionHelper:
    def test_section_format(self):
        text = _section("Title", "body line")
        assert text.startswith("## Title")
        assert "```\nbody line\n```" in text


class TestReportComposition:
    def test_source_includes_every_experiment(self):
        import inspect

        source = inspect.getsource(generate_report)
        for marker in (
            "run_table1",
            "run_random_functions(4",
            "run_random_functions(5",
            "run_table4",
            "run_scalability",
            "run_examples",
            "figure1_and_3d",
            "figure9_alu",
        ):
            assert marker in source, marker

    def test_progress_callback_signature(self):
        import inspect

        parameters = inspect.signature(generate_report).parameters
        assert "progress" in parameters
        assert "table1_sample" in parameters
