"""Tests for the naive one-gate-per-term baseline."""

import pytest

from repro.functions.permutation import Permutation
from repro.pprm.parser import parse_system
from repro.synth.naive import naive_gate_count, naive_synthesize


class TestGateCount:
    def test_identity_costs_nothing(self):
        system = parse_system("a_out = a\nb_out = b")
        assert naive_gate_count(system) == 0

    def test_fig1_count(self, fig1_spec):
        # a_out/b_out contribute 1 + 2 correction terms; c_out lacks its
        # own literal, so all 3 of its terms count: 6 gates total.
        assert naive_gate_count(fig1_spec.to_pprm()) == 6

    def test_counts_missing_identity_terms(self):
        # a_out = b has one non-identity term.
        system = parse_system("a_out = b\nb_out = b")
        assert naive_gate_count(system) == 1


class TestSynthesize:
    def test_identity(self):
        system = parse_system("a_out = a\nb_out = b")
        circuit = naive_synthesize(system)
        assert circuit is not None
        assert circuit.gate_count() == 0

    def test_simple_separable_function(self):
        # a_out = a + 1, b_out = b + a is realizable output-by-output:
        # order matters (b must go before a is flipped... or after —
        # the method picks a legal order).
        system = parse_system("a_out = a + 1\nb_out = b + a")
        circuit = naive_synthesize(system)
        assert circuit is not None
        assert circuit.to_pprm() == system

    def test_entangled_function_fails(self):
        # The wire swap has no safe output order: the naive method's
        # weakness called out in Sec. I.
        spec = Permutation([0, 2, 1, 3])
        assert naive_synthesize(spec.to_pprm()) is None

    def test_random_functions_defeat_naive(self, rng):
        """Random permutations are entangled across outputs, so the
        naive method almost always fails — the Sec. I motivation."""
        solved = 0
        for _ in range(60):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            circuit = naive_synthesize(spec.to_pprm())
            if circuit is not None:
                solved += 1
                assert circuit.implements(spec)
        assert solved <= 5

    SEPARABLE_SYSTEMS = [
        "a_out = a + 1\nb_out = b + a",
        "a_out = a\nb_out = b + a + 1",
        "a_out = a + b + 1\nb_out = b",
        "a_out = a + bc\nb_out = b\nc_out = c + 1",
    ]

    @pytest.mark.parametrize("text", SEPARABLE_SYSTEMS)
    def test_rmrls_never_worse_on_solvable_cases(self, text):
        """When the naive method succeeds, RMRLS matches or beats it —
        shared factors can only help (Sec. I)."""
        from repro.pprm.parser import parse_system
        from repro.synth.options import SynthesisOptions
        from repro.synth.rmrls import synthesize

        system = parse_system(text)
        naive = naive_synthesize(system)
        assert naive is not None
        assert naive.to_pprm() == system
        result = synthesize(
            system, SynthesisOptions(dedupe_states=True, max_steps=20_000)
        )
        assert result.solved
        assert result.gate_count <= naive.gate_count()
