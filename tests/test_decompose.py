"""Tests for Barenco-style Toffoli decomposition."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.decompose import decompose_circuit, decompose_gate
from repro.gates.fredkin import FredkinGate
from repro.gates.toffoli import ToffoliGate
from repro.utils.bitops import mask_from_indices


def _equivalent(gate, expansion, num_lines):
    for assignment in range(1 << num_lines):
        value = assignment
        for small in expansion:
            value = small.apply(value)
        if value != gate.apply(assignment):
            return False
    return True


class TestSmallGatesPassThrough:
    def test_not(self):
        gate = ToffoliGate(0, 0)
        assert decompose_gate(gate, 3) == [gate]

    def test_cnot_and_tof3(self):
        tof3 = ToffoliGate(0b011, 2)
        assert decompose_gate(tof3, 3) == [tof3]


class TestChainNetwork:
    @pytest.mark.parametrize("controls", [3, 4, 5])
    def test_with_full_work_lines(self, controls):
        """Lemma 7.2: 4(m-2) gates with m-2 borrowed lines."""
        num_lines = 2 * controls - 1
        gate = ToffoliGate(mask_from_indices(range(controls)), controls)
        expansion = decompose_gate(gate, num_lines)
        assert len(expansion) == 4 * (controls - 2)
        assert all(g.size <= 3 for g in expansion)
        assert _equivalent(gate, expansion, num_lines)

    def test_work_lines_restored_for_any_value(self):
        """Borrowed lines are dirty: correctness must hold whatever
        they carry — checked by full-space simulation."""
        gate = ToffoliGate(0b0111, 3)
        expansion = decompose_gate(gate, 5)
        assert _equivalent(gate, expansion, 5)


class TestSplitNetwork:
    def test_single_spare_line(self):
        """Lemma 7.3: one borrowed line suffices."""
        gate = ToffoliGate(0b01111, 4)  # 4 controls on 6 lines
        expansion = decompose_gate(gate, 6)
        assert all(g.size <= 3 for g in expansion)
        assert _equivalent(gate, expansion, 6)

    def test_larger_gate_one_spare(self):
        gate = ToffoliGate(0b011111, 5)  # 5 controls on 7 lines
        expansion = decompose_gate(gate, 7)
        assert all(g.size <= 3 for g in expansion)
        assert _equivalent(gate, expansion, 7)

    def test_no_spare_line_rejected(self):
        gate = ToffoliGate(0b0111, 3)
        with pytest.raises(ValueError):
            decompose_gate(gate, 4)

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            decompose_gate(ToffoliGate(0b0110, 0), 2)


class TestCircuitDecomposition:
    def test_whole_circuit(self):
        circuit = Circuit.parse(
            5, "TOF4(a, b, c, d) TOF2(a, b) TOF5(a, b, c, d, e)"
        )
        # TOF5 on 5 lines has no spare line.
        with pytest.raises(ValueError):
            decompose_circuit(circuit)

    def test_whole_circuit_with_room(self):
        circuit = Circuit(
            6,
            [
                ToffoliGate(0b001111, 4),
                ToffoliGate(0b000011, 2),
            ],
        )
        nct = decompose_circuit(circuit)
        assert nct.max_gate_size() <= 3
        assert nct.to_permutation() == circuit.to_permutation()

    def test_fredkin_expanded_first(self):
        circuit = Circuit(4, [FredkinGate(0b1100, 0, 1)])
        # Controlled-SWAP with 2 controls -> TOF4s -> needs a spare
        # line; on 4 lines every line is touched, so this must fail.
        with pytest.raises(ValueError):
            decompose_circuit(circuit)
        wider = Circuit(5, [FredkinGate(0b1100, 0, 1)])
        nct = decompose_circuit(wider)
        assert nct.max_gate_size() <= 3
        assert nct.to_permutation().images[:16] == tuple(
            FredkinGate(0b1100, 0, 1).apply(m) for m in range(16)
        )
