"""Failure injection: the guard rails must actually fire.

Every experiment driver re-verifies synthesized circuits and raises on
mismatch; these tests corrupt components deliberately and check the
alarms go off (a reproduction whose checks cannot fail proves nothing).
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class TestDriverVerificationFires:
    def test_table1_driver_detects_bad_circuits(self, monkeypatch):
        from repro.experiments import table1

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table1.run_table1(sample=1, include_miller=False)

    def test_table23_driver_detects_bad_circuits(self, monkeypatch):
        from repro.experiments import table23

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table23.run_random_functions(
                3, 1, SynthesisOptions(dedupe_states=True, max_steps=5000)
            )

    def test_benchmark_driver_detects_bad_circuits(self, monkeypatch):
        from repro.benchlib.specs import BenchmarkSpec
        from repro.experiments import table4

        monkeypatch.setattr(
            BenchmarkSpec, "verify", lambda self, circuit: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table4.run_table4(
                ["3_17"],
                SynthesisOptions(dedupe_states=True, max_steps=5000),
                use_portfolio=False,
            )

    def test_dontcare_driver_detects_bad_circuits(self, monkeypatch):
        from repro.functions import dontcare
        from repro.functions.truth_table import TruthTable

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        table = TruthTable.from_function(2, 1, lambda m: m & 1)
        with pytest.raises(AssertionError, match="unsound"):
            dontcare.synthesize_with_dont_cares(
                table, SynthesisOptions(dedupe_states=True, max_steps=2000)
            )


class TestResultVerifyCatchesTampering:
    def test_tampered_circuit_fails_verify(self, fig1_spec):
        result = synthesize(
            fig1_spec, SynthesisOptions(dedupe_states=True, max_steps=10000)
        )
        assert result.verify(fig1_spec)
        from repro.gates.toffoli import not_gate

        tampered = result.circuit.appended(not_gate(0))
        assert not tampered.implements(fig1_spec)

    def test_wrong_spec_fails_verify(self, fig1_spec):
        result = synthesize(
            fig1_spec, SynthesisOptions(dedupe_states=True, max_steps=10000)
        )
        assert not result.verify(Permutation.identity(3))

    def test_spec_verify_rejects_wrong_width(self):
        from repro.benchlib.specs import benchmark

        spec = benchmark("fig1")
        assert not spec.verify(Circuit.identity(4))


class TestOptimalBfsSelfCheck:
    def test_stitching_assertion_exists(self):
        """The bidirectional BFS carries an internal stitching check;
        simulate a bad stitch by corrupting the gate applier."""
        from repro.baselines import optimal

        spec = Permutation([1, 0, 3, 2, 5, 7, 4, 6])
        circuit = optimal.optimal_synthesize(spec)
        assert circuit is not None and circuit.implements(spec)
