"""Failure injection: the guard rails must actually fire.

Every experiment driver re-verifies synthesized circuits and raises on
mismatch; these tests corrupt components deliberately and check the
alarms go off (a reproduction whose checks cannot fail proves nothing).
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class TestDriverVerificationFires:
    """``strict=True`` preserves the historical hard alarm."""

    def test_table1_driver_detects_bad_circuits(self, monkeypatch):
        from repro.experiments import table1

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table1.run_table1(sample=1, include_miller=False, strict=True)

    def test_table23_driver_detects_bad_circuits(self, monkeypatch):
        from repro.experiments import table23

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table23.run_random_functions(
                3,
                1,
                SynthesisOptions(dedupe_states=True, max_steps=5000),
                strict=True,
            )

    def test_benchmark_driver_detects_bad_circuits(self, monkeypatch):
        from repro.benchlib.specs import BenchmarkSpec
        from repro.experiments import table4

        monkeypatch.setattr(
            BenchmarkSpec, "verify", lambda self, circuit: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table4.run_table4(
                ["3_17"],
                SynthesisOptions(dedupe_states=True, max_steps=5000),
                use_portfolio=False,
                strict=True,
            )

    def test_scalability_driver_detects_bad_circuits(self, monkeypatch):
        from repro.experiments import table567

        monkeypatch.setattr(
            table567, "_same_function", lambda found, generator: False
        )
        with pytest.raises(AssertionError, match="unsound"):
            table567.run_scalability(
                3,
                variables=[3],
                samples=2,
                options=SynthesisOptions(
                    dedupe_states=True, max_steps=5000, stop_at_first=True
                ),
                strict=True,
            )


class TestNonStrictRecordsUnsound:
    """Without ``strict``, an unsound circuit becomes a recorded
    failure and the sweep finishes."""

    def test_table23_records_unsound_and_continues(self, monkeypatch):
        from repro.experiments import table23

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        result = table23.run_random_functions(
            3, 3, SynthesisOptions(dedupe_states=True, max_steps=5000)
        )
        assert result.attempted == 3
        assert result.failures.get("unsound", 0) >= 1
        assert result.failed == sum(result.failures.values())
        assert not result.histogram

    def test_table1_records_unsound_and_continues(self, monkeypatch):
        from repro.experiments import table1

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        results = table1.run_table1(sample=2, include_miller=False)
        ours = results["ours_nct"]
        assert ours.attempted == 2
        assert ours.failures.get("unsound", 0) >= 1

    def test_benchmark_records_unsound_count(self, monkeypatch):
        from repro.benchlib.specs import BenchmarkSpec, benchmark
        from repro.experiments import table4

        monkeypatch.setattr(
            BenchmarkSpec, "verify", lambda self, circuit: False
        )
        outcome = table4.run_benchmark(
            benchmark("3_17"),
            SynthesisOptions(dedupe_states=True, max_steps=5000),
            use_portfolio=False,
            strict=False,
        )
        assert not outcome.solved
        assert outcome.unsound_count >= 1

    def test_dontcare_driver_detects_bad_circuits(self, monkeypatch):
        from repro.functions import dontcare
        from repro.functions.truth_table import TruthTable

        monkeypatch.setattr(
            Circuit, "implements", lambda self, spec: False
        )
        table = TruthTable.from_function(2, 1, lambda m: m & 1)
        with pytest.raises(AssertionError, match="unsound"):
            dontcare.synthesize_with_dont_cares(
                table, SynthesisOptions(dedupe_states=True, max_steps=2000)
            )


class TestResultVerifyCatchesTampering:
    def test_tampered_circuit_fails_verify(self, fig1_spec):
        result = synthesize(
            fig1_spec, SynthesisOptions(dedupe_states=True, max_steps=10000)
        )
        assert result.verify(fig1_spec)
        from repro.gates.toffoli import not_gate

        tampered = result.circuit.appended(not_gate(0))
        assert not tampered.implements(fig1_spec)

    def test_wrong_spec_fails_verify(self, fig1_spec):
        result = synthesize(
            fig1_spec, SynthesisOptions(dedupe_states=True, max_steps=10000)
        )
        assert not result.verify(Permutation.identity(3))

    def test_spec_verify_rejects_wrong_width(self):
        from repro.benchlib.specs import benchmark

        spec = benchmark("fig1")
        assert not spec.verify(Circuit.identity(4))


class TestOptimalBfsSelfCheck:
    def test_stitching_assertion_exists(self):
        """The bidirectional BFS carries an internal stitching check;
        simulate a bad stitch by corrupting the gate applier."""
        from repro.baselines import optimal

        spec = Permutation([1, 0, 3, 2, 5, 7, 4, 6])
        circuit = optimal.optimal_synthesize(spec)
        assert circuit is not None and circuit.implements(spec)
