"""Tests for don't-care-aware embedding search."""

import pytest

from repro.functions.dontcare import (
    DEFAULT_STRATEGIES,
    EmbeddingStrategy,
    candidate_embeddings,
    synthesize_with_dont_cares,
)
from repro.functions.embedding import embed
from repro.functions.truth_table import TruthTable
from repro.synth.options import SynthesisOptions

FAST = SynthesisOptions(dedupe_states=True, max_steps=15_000)


def full_adder() -> TruthTable:
    def row(m):
        a, b, c = m & 1, m >> 1 & 1, m >> 2 & 1
        carry = 1 if a + b + c >= 2 else 0
        return (carry << 2) | (((a + b + c) & 1) << 1) | (a ^ b)

    return TruthTable.from_function(3, 3, row)


class TestSpareOrders:
    @pytest.mark.parametrize("order", ["ascending", "descending", "gray"])
    def test_all_orders_valid(self, order):
        embedding = embed(full_adder(), spare_order=order)
        assert embedding.restricts_to_table()

    def test_orders_differ(self):
        asc = embed(full_adder(), spare_order="ascending")
        desc = embed(full_adder(), spare_order="descending")
        assert asc.permutation != desc.permutation

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            embed(full_adder(), spare_order="random")


class TestCandidateEmbeddings:
    def test_all_candidates_restrict(self):
        for strategy, embedding in candidate_embeddings(full_adder()):
            assert embedding.restricts_to_table(), strategy.name

    def test_candidates_deduplicated(self):
        seen = set()
        for _strategy, embedding in candidate_embeddings(full_adder()):
            assert embedding.permutation.images not in seen
            seen.add(embedding.permutation.images)

    def test_xor_block_matches_fig2b_structure(self):
        by_name = {
            strategy.name: embedding
            for strategy, embedding in candidate_embeddings(full_adder())
        }
        embedding = by_name["input-copy-low/xor-block"]
        images = embedding.permutation.images
        # Fig. 2(b)'s completion: block d=1 is the d=0 block XOR 0b1000.
        for m in range(8):
            assert images[8 + m] == images[m] ^ 0b1000

    def test_reversible_table_collapses_to_one_candidate(self):
        # A square reversible table has no garbage bits: every strategy
        # degrades to the same direct embedding, and deduplication
        # leaves a single candidate credited to the first strategy.
        table = TruthTable(2, 2, [0, 1, 2, 3])
        candidates = list(candidate_embeddings(table))
        assert len(candidates) == 1
        strategy, embedding = candidates[0]
        assert embedding.num_lines == 2
        assert embedding.num_garbage_outputs == 0
        assert embedding.permutation.is_identity()


class TestPortfolioSynthesis:
    def test_adder_reaches_paper_quality(self):
        """The portfolio recovers the paper's 4-gate Fig. 8 circuit
        from the raw irreversible table."""
        result = synthesize_with_dont_cares(full_adder(), FAST)
        assert result.solved
        assert result.circuit.gate_count() == 4
        assert result.strategy.name == "input-copy-low/xor-block"
        assert result.embedding.restricts_to_table()

    def test_attempts_recorded(self):
        result = synthesize_with_dont_cares(full_adder(), FAST)
        assert len(result.attempts) >= 4
        names = [name for name, _gates in result.attempts]
        assert "first-fit" in names

    def test_majority_portfolio(self):
        table = TruthTable.from_function(
            3, 1, lambda m: 1 if bin(m).count("1") >= 2 else 0
        )
        result = synthesize_with_dont_cares(table, FAST)
        assert result.solved
        # majority3 in Table IV: 4 gates.
        assert result.circuit.gate_count() <= 6

    def test_custom_strategy_list(self):
        only_first_fit = tuple(
            s for s in DEFAULT_STRATEGIES if s.name == "first-fit"
        )
        result = synthesize_with_dont_cares(
            full_adder(), FAST, strategies=only_first_fit
        )
        assert result.solved
        assert [name for name, _ in result.attempts] == ["first-fit"]

    def test_strategy_dataclass(self):
        strategy = EmbeddingStrategy("noop", lambda table: None)
        embedding = strategy.apply(full_adder())
        assert embedding is not None
        assert embedding.restricts_to_table()
