"""End-to-end flows a downstream user would run.

Each test strings several subsystems together the way the examples
and the CLI do: specification -> synthesis -> post-processing ->
verification -> serialization.
"""

from repro.benchlib.specs import benchmark
from repro.circuits.verify import equivalent
from repro.functions.dontcare import synthesize_with_dont_cares
from repro.functions.truth_table import TruthTable
from repro.io.pla import dump_pla, load_pla_table
from repro.io.real_format import dump_real, load_real
from repro.postprocess.templates import simplify
from repro.synth.ncts import synthesize_ncts
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

FAST = SynthesisOptions(dedupe_states=True, max_steps=20_000)


class TestSynthesisToFileFlow:
    def test_benchmark_to_real_and_back(self):
        spec = benchmark("3_17")
        result = synthesize(spec.pprm(), FAST)
        assert result.solved
        circuit = simplify(result.circuit)
        assert spec.verify(circuit)
        reloaded = load_real(dump_real(circuit))
        assert equivalent(reloaded, circuit)
        assert spec.verify(reloaded)

    def test_ncts_flow_round_trips_fredkin(self):
        spec = benchmark("fredkin")
        ncts = synthesize_ncts(spec.permutation, FAST)
        assert ncts.gate_count == 1
        text = dump_real(ncts.circuit)
        assert "f3" in text
        assert load_real(text).to_permutation() == spec.permutation


class TestPlaToCircuitFlow:
    def test_majority_pla_flow(self):
        table = TruthTable.from_function(
            3, 1, lambda m: 1 if bin(m).count("1") >= 2 else 0
        )
        # Serialize, reload, embed, synthesize, verify.
        reloaded = load_pla_table(dump_pla(table))
        assert reloaded == table
        result = synthesize_with_dont_cares(reloaded, FAST)
        assert result.solved
        assert result.embedding.restricts_to_table()

    def test_incrementer_pla_flow(self):
        # A reversible table straight from PLA: the 2-bit incrementer.
        text = ".i 2\n.o 2\n00 01\n01 10\n10 11\n11 00\n.e\n"
        table = load_pla_table(text)
        assert table.is_reversible()
        from repro.functions.permutation import Permutation

        spec = Permutation(list(table.rows))
        result = synthesize(spec, FAST)
        assert result.solved
        assert result.verify(spec)
        assert result.gate_count <= 2  # CNOT + NOT


class TestDrawAndProfileFlow:
    def test_drawing_of_synthesized_benchmark(self):
        from repro.circuits.drawing import draw_circuit
        from repro.circuits.profile import profile_circuit

        spec = benchmark("example1")
        result = synthesize(spec.pprm(), FAST)
        drawing = draw_circuit(result.circuit)
        assert drawing.count("\n") >= 4
        profile = profile_circuit(result.circuit)
        assert profile.gate_count == result.gate_count
        assert profile.quantum_cost == result.circuit.quantum_cost()
