"""Property-based tests for the PPRM algebra.

Hand-rolled properties over seeded generators (no external
property-testing dependency): every case is deterministic and shrunk
by construction — a failure prints the seed index and the exact
substitution, which is enough to reproduce it in a REPL.
"""

from __future__ import annotations

import random

import pytest

from repro.pprm.parser import parse_expansion, parse_system
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import enumerate_first_level
from repro.synth.substitutions import enumerate_substitutions

from conftest import random_spec

#: Seeded generator cases: (seed-stream index, num_vars).
_CASES = [(index, 3 + index % 3) for index in range(24)]


def _system(index: int, num_vars: int):
    """The ``index``-th seeded random reversible system on
    ``num_vars`` variables."""
    return random_spec(random.Random(0x5EED + index), num_vars).to_pprm()


def _legal_substitutions(system, limit: int = 8):
    """A deterministic sample of legal (target, factor) pairs."""
    candidates = enumerate_substitutions(system, SynthesisOptions())
    return [(c.target, c.factor) for c in candidates[:limit]]


class TestSubstituteInvolution:
    """``substitute`` is XOR-composition with a Toffoli gate, and a
    Toffoli gate is self-inverse: applying the same substitution twice
    must return the exact starting system."""

    @pytest.mark.parametrize("index,num_vars", _CASES)
    def test_double_substitute_is_identity(self, index, num_vars):
        system = _system(index, num_vars)
        for target, factor in _legal_substitutions(system):
            once = system.substitute(target, factor)
            twice = once.substitute(target, factor)
            assert twice == system, (
                f"seed {index}: substitute({target}, {factor:#x}) twice "
                f"changed the system"
            )

    @pytest.mark.parametrize("index,num_vars", _CASES[:8])
    def test_involution_on_outputs(self, index, num_vars):
        system = _system(index, num_vars)
        for target, factor in _legal_substitutions(system):
            expansion = system.output(target)
            assert expansion.substitute(target, factor).substitute(
                target, factor
            ) == expansion


class TestElimMatchesTermDelta:
    """The ranked first level reports each seed's ``elim`` (terms
    eliminated); it must equal the actual term-count delta of applying
    that seed's substitution, and ``terms`` must be the child's real
    total."""

    @pytest.mark.parametrize("index,num_vars", _CASES)
    def test_first_level_elim_is_true_delta(self, index, num_vars):
        system = _system(index, num_vars)
        root_terms = system.term_count()
        first = enumerate_first_level(system)
        if first.shortcut is not None:
            pytest.skip("spec solved during root expansion")
        assert first.seeds, "non-trivial spec must rank at least one seed"
        for seed in first.seeds:
            child = system.substitute(seed.target, seed.factor)
            assert seed.terms == child.term_count()
            assert seed.elim == root_terms - child.term_count(), (
                f"seed {index}: rank {seed.rank} reports elim={seed.elim}, "
                f"actual delta is {root_terms - child.term_count()}"
            )

    @pytest.mark.parametrize("index,num_vars", _CASES[:8])
    def test_ranking_is_priority_sorted(self, index, num_vars):
        first = enumerate_first_level(_system(index, num_vars))
        if first.shortcut is not None:
            pytest.skip("spec solved during root expansion")
        priorities = [seed.priority for seed in first.seeds]
        assert priorities == sorted(priorities, reverse=True)
        assert [seed.rank for seed in first.seeds] == list(
            range(len(first.seeds))
        )


class TestParserRoundTrip:
    """``parse_system``/``parse_expansion`` must round-trip the
    renderers exactly, including mid-search systems (after a few
    substitutions) whose expansions are not plain permutation PPRMs."""

    @pytest.mark.parametrize("index,num_vars", _CASES)
    def test_system_round_trip(self, index, num_vars):
        system = _system(index, num_vars)
        assert parse_system(str(system)) == system

    @pytest.mark.parametrize("index,num_vars", _CASES[:12])
    def test_substituted_system_round_trip(self, index, num_vars):
        system = _system(index, num_vars)
        for target, factor in _legal_substitutions(system, limit=3):
            system = system.substitute(target, factor)
        assert parse_system(str(system)) == system

    @pytest.mark.parametrize("index,num_vars", _CASES[:12])
    def test_expansion_round_trip(self, index, num_vars):
        system = _system(index, num_vars)
        for output in system.outputs:
            assert parse_expansion(str(output)) == output
