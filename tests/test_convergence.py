"""Convergence/completeness checks (Sec. IV-F).

The basic algorithm is claimed to always find a solution.  These tests
verify the claim exhaustively on two variables, on all wire
permutations of three lines (the hardest structural cases for the
term-decrease rule), and statistically on three variables, comparing
against provably optimal sizes where available.
"""

import itertools

import pytest

from repro.baselines.optimal import optimal_distances
from repro.functions.permutation import Permutation
from repro.gates.library import NCT
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

FAST = SynthesisOptions(dedupe_states=True, max_steps=20_000)


class TestTwoVariablesExhaustive:
    def test_all_24_functions_solve(self):
        optimal = optimal_distances(2, NCT)
        for images in itertools.permutations(range(4)):
            spec = Permutation(images)
            result = synthesize(spec, FAST)
            assert result.solved, images
            assert result.verify(spec)
            assert result.gate_count >= optimal[images]

    def test_two_variable_quality_near_optimal(self):
        optimal = optimal_distances(2, NCT)
        excess = 0
        for images in itertools.permutations(range(4)):
            result = synthesize(Permutation(images), FAST)
            excess += result.gate_count - optimal[images]
        # Across all 24 functions the search gives away at most a
        # handful of gates in total.
        assert excess <= 8


class TestWirePermutations:
    @pytest.mark.parametrize(
        "wire_map", list(itertools.permutations(range(3)))
    )
    def test_all_wire_relabelings_solve(self, wire_map):
        spec = Permutation.identity(3).output_permuted(list(wire_map))
        result = synthesize(spec, FAST)
        assert result.solved, wire_map
        assert result.verify(spec)
        # A wire swap is 3 CNOTs; a 3-cycle of wires is 6; identity 0.
        assert result.gate_count <= 6


class TestInverseSymmetry:
    def test_function_and_inverse_both_solve(self, rng):
        for _ in range(10):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            forward = synthesize(spec, FAST)
            backward = synthesize(spec.inverse(), FAST)
            assert forward.solved and backward.solved
            # The inverse of the forward circuit realizes the inverse
            # function; both searches must verify.
            assert forward.circuit.inverse().implements(spec.inverse())
            assert backward.verify(spec.inverse())


class TestConjugationInvariance:
    def test_relabeled_function_solves(self, rng):
        """Renaming wires cannot make a function unsolvable."""
        images = list(range(8))
        rng.shuffle(images)
        spec = Permutation(images)
        base = synthesize(spec, FAST)
        assert base.solved
        for wire_map in ([1, 0, 2], [2, 1, 0], [1, 2, 0]):
            relabeled = spec.output_permuted(wire_map)
            result = synthesize(relabeled, FAST)
            assert result.solved, wire_map
            assert result.verify(relabeled)
