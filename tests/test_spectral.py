"""Tests for the Rademacher-Walsh spectral utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.permutation import Permutation
from repro.functions.spectral import (
    permutation_spectra,
    rademacher_walsh_spectrum,
    spectral_complexity,
    walsh_hadamard_transform,
)

truth_vectors = st.lists(st.integers(0, 1), min_size=8, max_size=8)


class TestWalshHadamard:
    def test_constant_zero_function(self):
        # f = 0 -> signed vector all +1 -> spectrum concentrated at 0.
        assert rademacher_walsh_spectrum([0, 0, 0, 0]) == [4, 0, 0, 0]

    def test_single_literal(self):
        # f = x0: pairs with the x0 parity coefficient.
        spectrum = rademacher_walsh_spectrum([0, 1, 0, 1])
        assert spectrum == [0, 4, 0, 0]

    def test_xor_concentrates_on_full_mask(self):
        spectrum = rademacher_walsh_spectrum([0, 1, 1, 0])
        assert spectrum == [0, 0, 0, 4]

    def test_bad_length(self):
        with pytest.raises(ValueError):
            walsh_hadamard_transform([1, 2, 3])

    @given(truth_vectors)
    def test_parseval(self, values):
        spectrum = rademacher_walsh_spectrum(values)
        assert sum(c * c for c in spectrum) == 8 * 8

    @given(truth_vectors)
    def test_transform_involution_scaled(self, values):
        signed = [1 - 2 * v for v in values]
        double = walsh_hadamard_transform(walsh_hadamard_transform(signed))
        assert double == [8 * v for v in signed]


class TestComplexity:
    def test_literal_is_simplest_nonconstant(self):
        literal = spectral_complexity([0, 1, 0, 1])
        xor = spectral_complexity([0, 1, 1, 0])
        assert literal < xor

    def test_identity_outputs_minimal(self):
        spectra = permutation_spectra(Permutation.identity(2))
        for index, spectrum in enumerate(spectra):
            # Output i pairs exactly with variable i.
            expected = [0] * 4
            expected[1 << index] = 4
            assert spectrum == expected

    def test_permutation_spectra_shape(self, fig1_spec):
        spectra = permutation_spectra(fig1_spec)
        assert len(spectra) == 3
        assert all(len(s) == 8 for s in spectra)
