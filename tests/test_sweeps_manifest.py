"""Sweep manifests: deterministic partitions with stable fingerprints."""

import json

import pytest

from repro.sweeps import (
    ManifestError,
    build_manifest,
    get_universe,
    load_manifest,
    parse_shard_ref,
    write_manifest,
)


class TestBuildManifest:
    def test_partition_is_contiguous_and_near_equal(self):
        manifest = build_manifest("perm2", shards=3)
        spans = [(spec.start, spec.stop) for spec in manifest.shards]
        assert spans == [(0, 5), (5, 10), (10, 14)]
        assert sum(spec.items for spec in manifest.shards) == 14

    def test_fingerprints_are_reproducible(self):
        first = build_manifest("perm2", shards=3, engine="packed")
        second = build_manifest("perm2", shards=3, engine="packed")
        assert first.fingerprint == second.fingerprint
        assert [s.fingerprint for s in first.shards] == [
            s.fingerprint for s in second.shards
        ]

    def test_engine_and_shards_change_the_fingerprint(self):
        base = build_manifest("perm2", shards=2)
        assert build_manifest("perm2", shards=3).fingerprint \
            != base.fingerprint
        assert build_manifest("perm2", shards=2, engine="packed") \
            .fingerprint != base.fingerprint

    def test_task_ids_are_shard_layout_independent(self):
        two = build_manifest("perm2", shards=2)
        three = build_manifest("perm2", shards=3)

        def all_ids(manifest):
            return {
                task.task_id
                for index in range(manifest.shard_count)
                for task in manifest.tasks_for_shard(index)
            }

        assert all_ids(two) == all_ids(three)

    def test_limit_truncates_by_class_rank(self):
        manifest = build_manifest("perm2", shards=2, limit=6)
        assert manifest.items == 6
        classes = get_universe("perm2").classes
        assert manifest.functions == sum(
            cls.class_size for cls in classes[:6]
        )

    def test_task_meta_carries_class_identity(self):
        manifest = build_manifest("perm2", shards=1)
        task = manifest.tasks_for_shard(0)[3]
        cls = get_universe("perm2").item(3)
        assert task.meta["class_rank"] == 3
        assert task.meta["class_size"] == cls.class_size
        assert tuple(task.payload["images"]) == cls.images

    def test_invalid_plans_rejected(self):
        with pytest.raises(ManifestError):
            build_manifest("perm2", shards=0)
        with pytest.raises(ManifestError):
            build_manifest("perm2", shards=20)  # more shards than items
        with pytest.raises(ManifestError):
            build_manifest("perm2", limit=0)


class TestManifestFile:
    def test_write_load_round_trip(self, tmp_path):
        manifest = build_manifest("perm2", shards=3, engine="reference")
        path = str(tmp_path / "manifest.json")
        write_manifest(manifest, path)
        loaded = load_manifest(path)
        assert loaded == manifest

    def test_tampered_manifest_rejected(self, tmp_path):
        manifest = build_manifest("perm2", shards=2)
        path = str(tmp_path / "manifest.json")
        write_manifest(manifest, path)
        data = json.load(open(path))
        data["shards"] = 3  # silently replanning different work
        json.dump(data, open(path, "w"))
        with pytest.raises(ManifestError, match="fingerprint mismatch"):
            load_manifest(path)

    def test_non_manifest_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "other"}\n')
        with pytest.raises(ManifestError, match="not a"):
            load_manifest(str(path))
        path.write_text("not json")
        with pytest.raises(ManifestError, match="cannot load"):
            load_manifest(str(path))


class TestShardRef:
    def test_parses_one_based_refs(self):
        assert parse_shard_ref("1/4") == (0, 4)
        assert parse_shard_ref("4/4") == (3, 4)

    def test_rejects_malformed_refs(self):
        for ref in ["", "3", "0/4", "5/4", "a/b", "1/2/3"]:
            with pytest.raises(ManifestError):
                parse_shard_ref(ref)

    def test_checks_manifest_shard_count(self):
        manifest = build_manifest("perm2", shards=2)
        assert parse_shard_ref("2/2", manifest) == (1, 2)
        with pytest.raises(ManifestError, match="names 4 shards"):
            parse_shard_ref("2/4", manifest)
