"""Differential tests: the packed engine against the reference oracle.

The ``reference`` frozenset backend is the ground truth.  These tests
drive both engines through the same seeded inputs — algebra, queries,
serialization, candidate enumeration, and full synthesis — and demand
bit-identical behaviour everywhere the engine seam promises it.
"""

import random

import pytest

from repro.functions.permutation import Permutation, random_permutation
from repro.pprm import (
    ENGINE_ENV_VAR,
    ENGINES,
    PACKED_MAX_VARS,
    PackedExpansion,
    PPRMSystem,
    get_engine,
    resolve_engine,
    resolve_search_engine,
)
from repro.pprm.engine import default_engine_name
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.synth.substitutions import enumerate_substitutions

REFERENCE = ENGINES["reference"]
PACKED = ENGINES["packed"]

FAST = SynthesisOptions(dedupe_states=True, max_steps=20_000)


def _random_terms(rng, num_vars, max_terms=12):
    size = 1 << num_vars
    count = rng.randrange(max_terms + 1)
    return [rng.randrange(size) for _ in range(count)]


def _pair(rng, num_vars):
    """One (reference, packed) expansion pair over the same terms."""
    terms = _random_terms(rng, num_vars)
    return (
        REFERENCE.from_terms(terms, num_vars),
        PACKED.from_terms(terms, num_vars),
    )


def _same(ref, packed):
    """Bit-identical: same terms, same canonical order, same string."""
    assert list(ref.iter_terms()) == list(packed.iter_terms())
    assert str(ref) == str(packed)
    assert len(ref) == len(packed)


class TestAlgebraDifferential:
    def test_xor_matches(self):
        rng = random.Random(11)
        for _ in range(200):
            num_vars = rng.randint(1, 6)
            ref_a, packed_a = _pair(rng, num_vars)
            ref_b, packed_b = _pair(rng, num_vars)
            _same(ref_a ^ ref_b, packed_a ^ packed_b)

    def test_multiply_term_matches(self):
        rng = random.Random(12)
        for _ in range(200):
            num_vars = rng.randint(1, 6)
            ref, packed = _pair(rng, num_vars)
            factor = rng.randrange(1 << num_vars)
            _same(ref.multiply_term(factor), packed.multiply_term(factor))

    def test_substitute_matches(self):
        rng = random.Random(13)
        for _ in range(300):
            num_vars = rng.randint(2, 6)
            ref, packed = _pair(rng, num_vars)
            index = rng.randrange(num_vars)
            factor = rng.randrange(1 << num_vars) & ~(1 << index)
            _same(
                ref.substitute(index, factor),
                packed.substitute(index, factor),
            )

    def test_substitute_rejects_target_in_factor_identically(self):
        ref = REFERENCE.from_terms([3], 2)
        packed = PACKED.from_terms([3], 2)
        with pytest.raises(ValueError) as ref_error:
            ref.substitute(0, 3)
        with pytest.raises(ValueError) as packed_error:
            packed.substitute(0, 3)
        assert str(ref_error.value) == str(packed_error.value)

    def test_queries_match(self):
        rng = random.Random(14)
        for _ in range(200):
            num_vars = rng.randint(1, 6)
            ref, packed = _pair(rng, num_vars)
            assert ref.term_count() == packed.term_count()
            assert ref.is_zero() == packed.is_zero()
            assert ref.support() == packed.support()
            assert ref.degree() == packed.degree()
            for index in range(num_vars):
                assert ref.is_variable(index) == packed.is_variable(index)
            probe = rng.randrange(1 << num_vars)
            assert ref.contains_term(probe) == packed.contains_term(probe)

    def test_evaluate_matches(self):
        rng = random.Random(15)
        for _ in range(100):
            num_vars = rng.randint(1, 5)
            ref, packed = _pair(rng, num_vars)
            for assignment in range(1 << num_vars):
                assert ref.evaluate(assignment) == packed.evaluate(assignment)


class TestSerializationDifferential:
    def test_pack_agrees_across_engines(self):
        rng = random.Random(16)
        for _ in range(100):
            num_vars = rng.randint(1, 6)
            ref, packed = _pair(rng, num_vars)
            assert REFERENCE.pack(ref) == PACKED.pack(packed)

    def test_unpack_round_trips_both_ways(self):
        rng = random.Random(17)
        for _ in range(100):
            num_vars = rng.randint(1, 6)
            ref, packed = _pair(rng, num_vars)
            bits = PACKED.pack(packed)
            _same(REFERENCE.unpack(bits, num_vars), packed)
            _same(ref, PACKED.unpack(REFERENCE.pack(ref), num_vars))

    def test_convert_round_trip(self):
        rng = random.Random(18)
        for _ in range(50):
            num_vars = rng.randint(1, 6)
            ref, packed = _pair(rng, num_vars)
            there = PACKED.convert(ref, num_vars)
            _same(ref, there)
            back = REFERENCE.convert(there, num_vars)
            assert back == ref

    def test_dedupe_keys_discriminate_identically(self):
        rng = random.Random(19)
        pairs = [_pair(rng, 4) for _ in range(100)]
        for ref_a, packed_a in pairs:
            for ref_b, packed_b in pairs:
                same_ref = ref_a.dedupe_key() == ref_b.dedupe_key()
                same_packed = packed_a.dedupe_key() == packed_b.dedupe_key()
                assert same_ref == same_packed


class TestSystemDifferential:
    def test_from_permutation_matches(self):
        rng = random.Random(20)
        for _ in range(40):
            num_vars = rng.randint(2, 5)
            permutation = random_permutation(num_vars, rng)
            ref = PPRMSystem.from_permutation(permutation.images)
            packed = PPRMSystem.from_permutation(
                permutation.images, engine="packed"
            )
            assert ref.engine_name == "reference"
            assert packed.engine_name == "packed"
            assert str(ref) == str(packed)
            assert ref.dedupe_key() != ()  # sanity: keys exist
            for assignment in range(1 << num_vars):
                assert ref.evaluate(assignment) == packed.evaluate(assignment)

    def test_candidate_enumeration_matches(self):
        options = SynthesisOptions(
            extended_substitutions=True, complement_substitutions=True
        )
        rng = random.Random(21)
        for _ in range(25):
            permutation = random_permutation(3, rng)
            ref = PPRMSystem.from_permutation(permutation.images)
            packed = PPRMSystem.from_permutation(
                permutation.images, engine="packed"
            )
            ref_candidates = [
                (c.target, c.factor, c.allow_growth)
                for c in enumerate_substitutions(ref, options)
            ]
            packed_candidates = [
                (c.target, c.factor, c.allow_growth)
                for c in enumerate_substitutions(packed, options)
            ]
            assert ref_candidates == packed_candidates


class TestSynthesisDifferential:
    def test_byte_identical_cascades_on_quick_suite(self):
        """Both engines must produce the same circuit, gate for gate."""
        rng = random.Random(2004)
        suite = [random_permutation(3, rng) for _ in range(12)]
        suite.append(Permutation([1, 0, 7, 2, 3, 4, 5, 6]))  # Example 1
        suite.append(Permutation([7, 0, 1, 2, 3, 4, 5, 6]))
        for permutation in suite:
            ref = synthesize(permutation, FAST.with_(engine="reference"))
            packed = synthesize(permutation, FAST.with_(engine="packed"))
            assert ref.solved == packed.solved
            assert ref.stats.steps == packed.stats.steps
            if ref.circuit is None:
                continue
            assert str(ref.circuit) == str(packed.circuit)
            assert packed.circuit.implements(permutation)

    def test_greedy_options_also_match(self):
        options = FAST.with_(greedy_k=3, restart_steps=5_000)
        rng = random.Random(7)
        for permutation in [random_permutation(3, rng) for _ in range(6)]:
            ref = synthesize(permutation, options.with_(engine="reference"))
            packed = synthesize(permutation, options.with_(engine="packed"))
            assert ref.solved == packed.solved
            if ref.circuit is not None:
                assert str(ref.circuit) == str(packed.circuit)


class TestEngineResolution:
    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            get_engine("turbo")

    def test_resolve_engine_accepts_instances_and_names(self):
        assert resolve_engine("packed") is PACKED
        assert resolve_engine(PACKED) is PACKED
        with pytest.raises(TypeError):
            resolve_engine(42)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "packed")
        assert default_engine_name() == "packed"
        monkeypatch.delenv(ENGINE_ENV_VAR)
        assert default_engine_name() == "reference"

    def test_options_preference_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "packed")
        system = PPRMSystem.from_permutation([0, 1, 3, 2])
        assert resolve_search_engine("reference", system) is REFERENCE
        assert resolve_search_engine(None, system) is PACKED
        monkeypatch.delenv(ENGINE_ENV_VAR)
        assert resolve_search_engine(None, system) is REFERENCE

    def test_packed_input_is_not_downgraded(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        system = PPRMSystem.from_permutation([0, 1, 3, 2], engine="packed")
        assert resolve_search_engine(None, system) is PACKED

    def test_env_packed_falls_back_on_overwide_systems(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "packed")

        class Wide:
            num_vars = PACKED_MAX_VARS + 6
            engine = REFERENCE

        assert resolve_search_engine(None, Wide()) is REFERENCE

    def test_packed_width_guard(self):
        with pytest.raises(ValueError, match="at most"):
            PackedExpansion(0, PACKED_MAX_VARS + 1)

    def test_options_validate_engine_eagerly(self):
        with pytest.raises(ValueError, match="unknown"):
            SynthesisOptions(engine="turbo")
