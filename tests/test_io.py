"""Tests for RevLib .real and PLA interchange formats."""

import pytest

from repro.circuits.circuit import Circuit
from repro.esop.convert import esop_to_pprm
from repro.functions.truth_table import TruthTable
from repro.gates.fredkin import FredkinGate
from repro.io.pla import PlaError, dump_pla, load_pla_esop, load_pla_table
from repro.io.real_format import RealFormatError, dump_real, load_real
from repro.pprm.transform import truth_vector_to_expansion


class TestRealRoundTrip:
    def test_toffoli_circuit(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)")
        text = dump_real(circuit, header_comments=["fig 3(d)"])
        assert ".numvars 3" in text
        assert "t1 a" in text
        assert "t3 a c b" in text
        parsed = load_real(text)
        assert parsed == circuit

    def test_fredkin_circuit(self):
        circuit = Circuit(3, [FredkinGate(0b100, 0, 1)])
        parsed = load_real(dump_real(circuit))
        assert parsed == circuit

    def test_custom_names(self):
        circuit = Circuit.parse(2, "TOF2(a, b)")
        text = dump_real(circuit, names=["x", "y"])
        assert "t2 x y" in text
        assert load_real(text).to_permutation() == circuit.to_permutation()

    def test_name_count_checked(self):
        with pytest.raises(ValueError):
            dump_real(Circuit.identity(2), names=["only"])

    def test_parse_revlib_sample(self):
        text = """
        # a published-style file
        .version 2.0
        .numvars 3
        .variables a b c
        .inputs a b c
        .outputs a b c
        .constants ---
        .garbage ---
        .begin
        t2 a b
        f3 a b c
        .end
        """
        circuit = load_real(text)
        assert circuit.gate_count() == 2
        assert isinstance(circuit.gates[1], FredkinGate)

    @pytest.mark.parametrize(
        "text,fragment",
        [
            (".begin\nt1 a\n.end", ".begin before .numvars"),
            (".numvars 2\nt1 a\n.end", "outside"),
            (".numvars 2\n.begin\nv1 a\n.end", "unsupported gate kind"),
            (".numvars 2\n.begin\nt2 a\n.end", "expects 2 operands"),
            (".numvars 2\n.begin\nt1 z\n.end", "unknown variable"),
            (".numvars 2\n.begin\nt1 a\n", "missing .end"),
            (".numvars 0\n.begin\n.end", "positive"),
            (".numvars 2\n.variables a\n.begin\n.end", "lists 1 names"),
        ],
    )
    def test_malformed_rejected(self, text, fragment):
        with pytest.raises(RealFormatError, match=fragment.replace("(", r"\(")):
            load_real(text)

    def test_missing_numvars(self):
        with pytest.raises(RealFormatError):
            load_real("# nothing\n")


class TestNegativeControls:
    def test_negative_control_semantics(self):
        # t2 -a b: flip b iff a == 0.
        circuit = load_real(".numvars 2\n.begin\nt2 -a b\n.end\n")
        assert circuit.gate_count() == 3  # NOT a, CNOT, NOT a
        perm = circuit.to_permutation()
        assert perm(0b00) == 0b10
        assert perm(0b01) == 0b01
        assert perm(0b10) == 0b00
        assert perm(0b11) == 0b11

    def test_mixed_controls(self):
        # t3 a -b c: flip c iff a == 1 and b == 0.
        circuit = load_real(".numvars 3\n.begin\nt3 a -b c\n.end\n")
        perm = circuit.to_permutation()
        for m in range(8):
            expect_flip = (m & 1) and not (m & 2)
            assert perm(m) == (m ^ 4 if expect_flip else m), m

    def test_negative_fredkin_control(self):
        circuit = load_real(".numvars 3\n.begin\nf3 -c a b\n.end\n")
        perm = circuit.to_permutation()
        # swap a,b iff c == 0.
        assert perm(0b001) == 0b010
        assert perm(0b101) == 0b101

    def test_negated_target_rejected(self):
        with pytest.raises(RealFormatError, match="target"):
            load_real(".numvars 2\n.begin\nt2 a -b\n.end\n")
        with pytest.raises(RealFormatError, match="target"):
            load_real(".numvars 3\n.begin\nf3 c -a b\n.end\n")

    def test_sandwich_restores_control_line(self):
        circuit = load_real(".numvars 2\n.begin\nt2 -a b\nt2 -a b\n.end\n")
        # Applying the gate twice is the identity; the NOT sandwiches
        # must restore line a in between.
        assert circuit.to_permutation().is_identity()


class TestPla:
    RD_STYLE = """
    .i 3
    .o 2
    .type fr
    110 10
    101 10
    011 10
    111 01
    """

    def test_load_table(self):
        table = load_pla_table(self.RD_STYLE)
        assert table.num_inputs == 3
        assert table(0b110) == 0b10
        assert table(0b111) == 0b01
        assert table(0b000) == 0

    def test_dump_round_trip(self):
        table = load_pla_table(self.RD_STYLE)
        again = load_pla_table(dump_pla(table))
        assert again == table

    def test_dont_care_inputs_expand(self):
        text = ".i 2\n.o 1\n1- 1\n"
        table = load_pla_table(text)
        assert table(0b10) == 1 and table(0b11) == 1
        assert table(0b00) == 0

    def test_esop_cover_and_pprm(self):
        text = ".i 2\n.o 1\n.type esop\n1- 1\n11 1\n"
        cover = load_pla_esop(text)
        assert cover.cube_count() == 2
        # b XOR ab tabulates as [0, 0, 1, 0].
        assert esop_to_pprm(cover) == truth_vector_to_expansion([0, 0, 1, 0])

    def test_esop_output_selection(self):
        text = ".i 2\n.o 2\n11 10\n1- 01\n"
        assert load_pla_esop(text, output=1).cube_count() == 1
        assert load_pla_esop(text, output=0).cube_count() == 1
        with pytest.raises(PlaError):
            load_pla_esop(text, output=2)

    @pytest.mark.parametrize(
        "text",
        [
            "11 1\n",                      # missing headers
            ".i 2\n.o 1\n111 1\n",         # column mismatch
            ".i 2\n.o 1\n11 2\n",          # bad output symbol
            ".i 2\n.o 1\n11\n",            # missing output field
            ".i 2\n.o 1\n.magic\n11 1\n",  # unknown directive
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(PlaError):
            load_pla_table(text)

    def test_rd53_from_pla(self):
        """Build rd53's table from PLA text and embed it — the MCNC
        flow of Example 9."""
        lines = [".i 5", ".o 3"]
        for m in range(32):
            weight = bin(m).count("1")
            if weight:
                lines.append(f"{m:05b} {weight:03b}")
        table = load_pla_table("\n".join(lines))
        from repro.functions.embedding import embed

        embedding = embed(table)
        assert embedding.permutation.num_vars == 7
        assert embedding.restricts_to_table()
