"""Tests for circuit equivalence checking."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.verify import (
    PPRMBlowup,
    circuit_matches_system,
    equivalent,
    symbolic_pprm,
)
from repro.gates.toffoli import ToffoliGate


class TestSymbolicPPRM:
    def test_matches_to_pprm(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)")
        assert symbolic_pprm(circuit) == circuit.to_pprm()

    def test_term_cap_raises(self):
        # A random dense cascade grows the PPRM fast.
        import random

        from repro.gates.library import GT

        rng = random.Random(1)
        circuit = Circuit(
            12, [GT.random_gate(12, rng) for _ in range(30)]
        )
        with pytest.raises(PPRMBlowup):
            symbolic_pprm(circuit, max_terms=200)


class TestEquivalent:
    def test_identical(self):
        a = Circuit.parse(3, "TOF2(a, b) TOF1(c)")
        b = Circuit.parse(3, "TOF1(c) TOF2(a, b)")  # commuting pair
        assert equivalent(a, b)

    def test_different(self):
        a = Circuit.parse(2, "TOF1(a)")
        b = Circuit.parse(2, "TOF1(b)")
        assert not equivalent(a, b)

    def test_width_mismatch(self):
        assert not equivalent(Circuit.identity(2), Circuit.identity(3))

    def test_wide_symbolic_path(self):
        # 20 lines forces the symbolic route; CNOT chains stay tiny.
        chain = [ToffoliGate(1 << (i + 1), i) for i in range(19)]
        a = Circuit(20, chain)
        b = Circuit(20, list(reversed(chain)))
        # Reversed CNOT chain is a DIFFERENT function here (targets
        # feed each other), so expect inequality...
        assert not equivalent(a, b)
        assert equivalent(a, Circuit(20, chain))

    def test_wide_sampled_fallback(self):
        import random

        from repro.gates.library import GT

        rng = random.Random(5)
        dense = Circuit(
            18, [GT.random_gate(18, rng) for _ in range(25)]
        )
        assert equivalent(dense, dense, max_terms=10, samples=64)
        other = dense.appended(ToffoliGate(0, 0))
        assert not equivalent(dense, other, max_terms=10, samples=64)


class TestCircuitMatchesSystem:
    def test_shift28_exact_verification(self):
        from repro.benchlib.symbolic import controlled_shifter_system
        from repro.benchlib.generators import controlled_shifter

        # Build the 4-data-line shifter circuit via synthesis-free
        # construction: verify the symbolic system against a circuit
        # derived from the numeric permutation at small width...
        system = controlled_shifter_system(2)
        from repro.synth.rmrls import synthesize
        from repro.synth.options import SynthesisOptions

        result = synthesize(
            system, SynthesisOptions(dedupe_states=True, max_steps=20_000)
        )
        assert result.solved
        assert circuit_matches_system(result.circuit, system)

    def test_rejects_wrong_circuit(self):
        from repro.benchlib.symbolic import graycode_system

        assert not circuit_matches_system(
            Circuit.identity(20), graycode_system(20)
        )

    def test_width_mismatch(self):
        from repro.benchlib.symbolic import graycode_system

        assert not circuit_matches_system(
            Circuit.identity(3), graycode_system(4)
        )


class TestFredkinExtraction:
    def test_extracts_swap(self):
        from repro.postprocess import extract_fredkin

        circuit = Circuit.parse(2, "TOF2(b, a) TOF2(a, b) TOF2(b, a)")
        extracted = extract_fredkin(circuit)
        assert extracted.gate_count() == 1
        assert str(extracted.gates[0]) == "SWAP(a, b)"
        assert extracted.to_permutation() == circuit.to_permutation()

    def test_extracts_controlled_fredkin(self):
        from repro.postprocess import extract_fredkin

        circuit = Circuit.parse(3, "TOF3(c, b, a) TOF3(c, a, b) TOF3(c, b, a)")
        extracted = extract_fredkin(circuit)
        assert extracted.gate_count() == 1
        assert extracted.to_permutation() == circuit.to_permutation()

    def test_non_matching_triple_untouched(self):
        from repro.postprocess import extract_fredkin

        circuit = Circuit.parse(3, "TOF2(b, a) TOF2(a, b) TOF2(a, c)")
        assert extract_fredkin(circuit) == circuit

    def test_mismatched_commons_untouched(self):
        from repro.postprocess import extract_fredkin

        circuit = Circuit.parse(3, "TOF3(c, b, a) TOF2(a, b) TOF3(c, b, a)")
        assert extract_fredkin(circuit) == circuit

    def test_cascaded_extraction(self):
        from repro.postprocess import extract_fredkin

        text = ("TOF2(b, a) TOF2(a, b) TOF2(b, a) "
                "TOF3(c, b, a) TOF3(c, a, b) TOF3(c, b, a)")
        circuit = Circuit.parse(3, text)
        extracted = extract_fredkin(circuit)
        assert extracted.gate_count() == 2
        assert extracted.to_permutation() == circuit.to_permutation()

    def test_match_helper(self):
        from repro.postprocess import match_fredkin_triple

        first = ToffoliGate(0b110, 0)
        second = ToffoliGate(0b101, 1)
        assert match_fredkin_triple(first, second, first) is not None
        assert match_fredkin_triple(first, second, second) is None

    def test_example3_circuit_becomes_fredkin(self):
        """The paper's Example 3 synthesizes the Fredkin gate as three
        Toffolis; extraction recovers the single gate — closing the
        loop on the future-work item."""
        from repro.postprocess import extract_fredkin
        from repro.synth.options import SynthesisOptions
        from repro.synth.rmrls import synthesize
        from repro.functions.permutation import Permutation

        spec = Permutation([0, 1, 2, 3, 4, 6, 5, 7])
        result = synthesize(
            spec, SynthesisOptions(dedupe_states=True, max_steps=20_000)
        )
        assert result.gate_count == 3
        extracted = extract_fredkin(result.circuit)
        assert extracted.gate_count() == 1
        assert extracted.to_permutation() == spec
