"""Isolated workers: budgets are hard, exits are classified.

These tests fork real subprocesses via the fault-injection probes: one
that ``os._exit``\\ s without a result, one that sleeps past its wall
budget, one that allocates past its memory cap, and flaky ones that
exercise the retry ladder.
"""

import pytest

from repro.harness import (
    HarnessConfig,
    RetryPolicy,
    WorkerBudget,
    WorkerPool,
    permutation_task,
    probe_task,
    run_sweep,
)
from repro.synth.options import SynthesisOptions


def _pool_run(tasks, **kwargs):
    pool = WorkerPool(**kwargs)
    return pool.run(tasks)


class TestExitClassification:
    def test_ok_probe(self):
        [outcome] = _pool_run([probe_task("ok", gate_count=4)])
        assert outcome.status == "ok"
        assert outcome.gate_count == 4

    def test_hard_exit_is_crash(self):
        [outcome] = _pool_run([probe_task("exit", code=13)])
        assert outcome.status == "crash"
        assert "exited with code 13" in outcome.error

    def test_unhandled_exception_is_crash_with_traceback(self):
        [outcome] = _pool_run([probe_task("raise", message="boom")])
        assert outcome.status == "crash"
        assert "boom" in outcome.error

    @pytest.mark.flaky_guard
    def test_hang_past_wall_budget_is_killed(self):
        # Real-time coupled: the 0.5 s wall budget races the 60 s sleep.
        # The margin is 120x, but a badly overloaded machine can still
        # stall the *launch* past the budget — hence the rerun guard.
        [outcome] = _pool_run(
            [probe_task("hang", seconds=60)],
            budget=WorkerBudget(wall_seconds=0.5),
        )
        assert outcome.status == "hang"
        assert "wall budget" in outcome.error

    def test_allocation_past_memory_budget_is_oom(self):
        [outcome] = _pool_run(
            [probe_task("oom", mbytes=256)],
            budget=WorkerBudget(mem_limit_mb=128),
        )
        assert outcome.status == "oom"

    def test_allocation_within_budget_completes(self):
        [outcome] = _pool_run([probe_task("oom", mbytes=16)])
        assert outcome.status == "ok"


class TestPoolScheduling:
    def test_multiple_jobs_finish_everything(self):
        tasks = [
            probe_task("ok", meta={"i": index}, namespace=f"n{index}")
            for index in range(5)
        ]
        outcomes = _pool_run(tasks, jobs=2)
        assert len(outcomes) == 5
        assert {o.status for o in outcomes} == {"ok"}

    def test_on_final_fires_per_task(self):
        seen = []
        pool = WorkerPool()
        pool.run(
            [probe_task("ok"), probe_task("unsolved")],
            on_final=lambda task, outcome: seen.append(outcome.status),
        )
        assert sorted(seen) == ["ok", "unsolved"]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)
        with pytest.raises(ValueError):
            WorkerBudget(wall_seconds=0)
        with pytest.raises(ValueError):
            WorkerBudget(mem_limit_mb=-1)


class TestRetriesInIsolation:
    def test_flaky_worker_recovers(self):
        [outcome] = _pool_run(
            [probe_task("flaky", ok_after=2)],
            retry=RetryPolicy(max_retries=2),
        )
        assert outcome.status == "ok"
        assert outcome.attempts == 2

    def test_escalated_steps_unlock_success(self):
        [outcome] = _pool_run(
            [probe_task("need_steps", min_steps=40,
                        options={"max_steps": 10})],
            retry=RetryPolicy(max_retries=2, step_factor=2.0),
        )
        # 10 -> 20 -> 40: solved on the third attempt.
        assert outcome.status == "ok"
        assert outcome.attempts == 3

    def test_retries_exhausted_keeps_last_status(self):
        [outcome] = _pool_run(
            [probe_task("exit")], retry=RetryPolicy(max_retries=1)
        )
        assert outcome.status == "crash"
        assert outcome.attempts == 2


class TestRealSynthesisIsolated:
    def test_permutation_synthesis_round_trips(self):
        task = permutation_task(
            [0, 1, 2, 3, 4, 5, 7, 6],
            SynthesisOptions(dedupe_states=True, max_steps=5000),
        )
        [outcome] = _pool_run([task])
        assert outcome.status == "ok"
        assert outcome.gate_count == 1
        from repro.io.real_format import load_real

        circuit = load_real(outcome.circuit)
        assert circuit.gate_count() == 1

    def test_isolated_equals_inline(self):
        options = SynthesisOptions(dedupe_states=True, max_steps=5000)
        task = permutation_task([1, 0, 3, 2, 5, 4, 7, 6], options)
        inline = []
        run_sweep("eq-inline", [task],
                  on_outcome=lambda t, o: inline.append(o))
        isolated = []
        run_sweep("eq-isolated", [task], config=HarnessConfig(isolate=True),
                  on_outcome=lambda t, o: isolated.append(o))
        assert inline[0].status == isolated[0].status == "ok"
        assert inline[0].gate_count == isolated[0].gate_count
        assert inline[0].circuit == isolated[0].circuit
