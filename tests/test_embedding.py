"""Tests for repro.functions.embedding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functions.embedding import embed, required_garbage_outputs
from repro.functions.truth_table import TruthTable


def full_adder() -> TruthTable:
    def row(m: int) -> int:
        a, b, c = m & 1, m >> 1 & 1, m >> 2 & 1
        carry = 1 if a + b + c >= 2 else 0
        total = (a + b + c) & 1
        propagate = a ^ b
        return (carry << 2) | (total << 1) | propagate

    return TruthTable.from_function(3, 3, row)


class TestGarbageRequirement:
    def test_full_adder_needs_one_garbage(self):
        # Fig. 2(a): two output rows repeat twice -> ceil(log2 2) = 1.
        assert required_garbage_outputs(full_adder()) == 1

    def test_injective_function_needs_none(self):
        table = TruthTable(2, 2, [0, 1, 2, 3])
        assert required_garbage_outputs(table) == 0

    def test_constant_function(self):
        table = TruthTable.single_output([1, 1, 1, 1])
        assert required_garbage_outputs(table) == 2


class TestEmbedding:
    def test_full_adder_matches_paper_shape(self):
        embedding = embed(full_adder())
        # Fig. 2(b): 4 lines, 1 garbage output, 1 constant input.
        assert embedding.num_lines == 4
        assert embedding.num_garbage_outputs == 1
        assert embedding.num_constant_inputs == 1

    def test_embedding_restricts_to_table(self):
        assert embed(full_adder()).restricts_to_table()

    def test_explicit_garbage_fig2b(self):
        # Fig. 2(b) chooses the garbage output equal to input a.
        embedding = embed(full_adder(), garbage=lambda m: m & 1)
        assert embedding.restricts_to_table()

    def test_conflicting_garbage_rejected(self):
        with pytest.raises(ValueError):
            embed(full_adder(), garbage=lambda m: 0)

    def test_garbage_word_out_of_range(self):
        with pytest.raises(ValueError):
            embed(full_adder(), garbage=lambda m: 2)

    def test_extra_garbage(self):
        embedding = embed(full_adder(), extra_garbage_outputs=1)
        assert embedding.num_garbage_outputs == 2
        assert embedding.num_lines == 5
        assert embedding.restricts_to_table()

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            embed(full_adder(), extra_garbage_outputs=-1)

    def test_more_inputs_than_outputs(self):
        # 3 inputs, 1 output: squaring forces 2 extra garbage outputs.
        table = TruthTable.from_function(3, 1, lambda m: m.bit_count() & 1)
        embedding = embed(table)
        assert embedding.num_lines == 3
        assert embedding.num_garbage_outputs == 2
        assert embedding.restricts_to_table()

    def test_embedded_input_range_checked(self):
        embedding = embed(full_adder())
        with pytest.raises(ValueError):
            embedding.embedded_input(8)

    @given(st.lists(st.integers(0, 3), min_size=8, max_size=8))
    def test_random_tables_embed_correctly(self, rows):
        table = TruthTable(3, 2, rows)
        embedding = embed(table)
        assert embedding.restricts_to_table()
        # The result is validated as a bijection by Permutation itself.
        assert embedding.permutation.num_vars == embedding.num_lines

    def test_real_output_extraction(self):
        embedding = embed(full_adder())
        word = embedding.permutation(0b0101)
        bits = [embedding.real_output(word, j) for j in range(3)]
        assert bits == [
            full_adder()(0b101) >> j & 1 for j in range(3)
        ]
