"""Deterministic replay: a crash dump is a reproducible test case.

The in-process tests record a real search with the worker's own
arming helper and replay the resulting dump; the property test kills
a real worker at a parametrized acknowledged event and asserts the
recovered dump replays bit-identically — the end-to-end guarantee
``rmrls replay`` sells.
"""

import json
import os
import random

import pytest

from repro.functions.permutation import Permutation
from repro.harness import WorkerPool, permutation_task
from repro.harness.tasks import options_from_payload
from repro.obs.flight import (
    DUMP_STATUSES,
    EVERY_ENV_VAR,
    FAULTS_ENV_VAR,
    FlightObserver,
    arm_worker_recorder,
    dump_checksum,
    load_dump,
    replay_dump,
    replayable,
)
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


def _record_search(tmp_path, images, max_steps=2000, every=1):
    """Run one recorded synthesis exactly the way a worker arms it."""
    task = permutation_task(
        images, options=SynthesisOptions(max_steps=max_steps)
    )
    flight = {"dir": str(tmp_path), "task_id": task.task_id}
    recorder = arm_worker_recorder(
        flight, task.kind, task.payload, task.options, attempt=1,
        every=every,
    )
    observer = FlightObserver(recorder, every=every)
    options = options_from_payload(task.options).with_(
        observers=(observer,)
    )
    result = synthesize(Permutation(images).to_pprm(), options)
    return recorder, result


def _shuffled(seed: int, size: int = 16) -> list[int]:
    images = list(range(size))
    random.Random(seed).shuffle(images)
    return images


class TestInProcessReplay:
    def test_replay_reaches_every_recorded_state(self, tmp_path):
        recorder, result = _record_search(tmp_path, _shuffled(7))
        path = recorder.write_dump(reason="crash", error="synthetic")
        document = load_dump(path)
        assert replayable(document)
        verdict = replay_dump(document)
        assert verdict["ok"] is True
        assert verdict["checked"] > 0
        assert verdict["mismatches"] == []
        assert verdict["steps_replayed"] == result.stats.steps

    def test_strided_recording_still_replays(self, tmp_path):
        recorder, _ = _record_search(tmp_path, _shuffled(8), every=16)
        document = load_dump(
            recorder.write_dump(reason="oom", error=None)
        )
        verdict = replay_dump(document)
        assert verdict["ok"] is True
        assert verdict["checked"] > 0

    def test_tampered_digest_diverges(self, tmp_path):
        recorder, _ = _record_search(tmp_path, _shuffled(9))
        path = recorder.write_dump(reason="crash", error=None)
        with open(path) as handle:
            document = json.load(handle)
        steps = [event for event in document["events"]
                 if event.get("k") == "step"]
        steps[len(steps) // 2]["digest"] ^= 1
        document["checksum"] = dump_checksum(document)
        verdict = replay_dump(document)
        assert verdict["ok"] is False
        assert len(verdict["mismatches"]) >= 1

    def test_unreplayable_kind_is_refused(self, tmp_path):
        recorder, _ = _record_search(tmp_path, _shuffled(10))
        path = recorder.write_dump(reason="crash", error=None)
        with open(path) as handle:
            document = json.load(handle)
        document["meta"]["kind"] = "probe"
        document["checksum"] = dump_checksum(document)
        assert not replayable(document)
        with pytest.raises(ValueError, match="not replayable"):
            replay_dump(document)


class TestSigkillReplayProperty:
    """Record → SIGKILL at a random acknowledged event → replay."""

    @pytest.mark.parametrize("kill_at", [6, 19, 41])
    def test_recovered_dump_replays_bit_identically(
        self, tmp_path, monkeypatch, kill_at
    ):
        monkeypatch.setenv(EVERY_ENV_VAR, "1")
        monkeypatch.setenv(FAULTS_ENV_VAR, f"sigkill@{kill_at}")
        task = permutation_task(
            _shuffled(kill_at),
            options=SynthesisOptions(max_steps=4000),
        )
        pool = WorkerPool(flight_dir=str(tmp_path))
        [outcome] = pool.run([task])
        assert outcome.status in DUMP_STATUSES
        dumps = [name for name in os.listdir(tmp_path)
                 if name.endswith(".dump.json")]
        assert len(dumps) == 1
        document = load_dump(os.path.join(str(tmp_path), dumps[0]))
        assert document["recovered"] is True
        verdict = replay_dump(document)
        assert verdict["ok"] is True, verdict
        assert verdict["checked"] > 0
        assert verdict["mismatches"] == []
