"""Internal-consistency checks on the transcribed paper data.

The published tables carry redundant information (histograms plus
averages, bucket counts plus sample sizes); these tests verify the
transcription agrees with itself, which also catches typos against the
paper.
"""

import pytest

from repro.experiments.paper_data import (
    EXAMPLE_GATE_COUNTS,
    SCALABILITY_BUCKETS,
    TABLE1,
    TABLE1_AVERAGES,
    TABLE2_SIZES,
    TABLE3_FAILED,
    TABLE3_SIZES,
    TABLE4,
    TABLE4_NCT_NAMES,
    TABLE5,
    TABLE6,
    TABLE7,
)


class TestTable1Consistency:
    @pytest.mark.parametrize("column", sorted(TABLE1))
    def test_histogram_matches_published_average(self, column):
        histogram = TABLE1[column]
        total = sum(histogram.values())
        average = sum(size * count for size, count in histogram.items()) / total
        assert average == pytest.approx(TABLE1_AVERAGES[column], abs=0.005)


class TestTable3Consistency:
    def test_sizes_plus_failures_total_3000(self):
        assert sum(TABLE3_SIZES.values()) + TABLE3_FAILED == 3000

    def test_sizes_within_gate_cap(self):
        # Protocol capped circuits at 60 gates.
        assert max(TABLE3_SIZES) <= 60
        assert min(TABLE3_SIZES) >= 1


class TestTable4Consistency:
    def test_nct_names_are_table4_rows(self):
        assert TABLE4_NCT_NAMES <= set(TABLE4)

    def test_best_published_fields_paired(self):
        # Gates and cost from [13] are either both present or both "-".
        for name, row in TABLE4.items():
            assert (row[4] is None) == (row[5] is None), name

    def test_cnot_only_rows_cost_equals_gates(self):
        for name in ("graycode6", "graycode10", "graycode20", "xor5"):
            row = TABLE4[name]
            assert row[2] == row[3], name

    def test_example_counts_agree_with_table4(self):
        # Examples re-listed in Table IV carry the same gate count.
        for name in ("rd53", "alu", "decod24", "5one013", "majority5"):
            assert EXAMPLE_GATE_COUNTS[name] == TABLE4[name][2], name


class TestScalabilityTables:
    @pytest.mark.parametrize(
        "table,sample", [(TABLE5, 500), (TABLE6, 1000), (TABLE7, 1000)]
    )
    def test_rows_sum_to_sample(self, table, sample):
        for variables, (buckets, failed) in table.items():
            assert sum(buckets) + failed == sample, variables
            assert len(buckets) == len(SCALABILITY_BUCKETS)

    def test_failure_grows_with_gate_cap(self):
        """The paper's headline scalability trend: for every variable
        count, the 25-gate setting fails at least as often as the
        15-gate setting."""
        for variables in TABLE5:
            assert TABLE7[variables][1] >= TABLE5[variables][1], variables

    def test_variables_cover_6_to_16(self):
        for table in (TABLE5, TABLE6, TABLE7):
            assert sorted(table) == list(range(6, 17))
