"""Trace summarization: folding JSONL event streams into the
substitution/queue/restart summary behind ``rmrls trace summarize``."""

import io
import json

import pytest

from repro.functions.permutation import Permutation
from repro.obs import (
    JsonlTraceObserver,
    render_trace_summary,
    summarize_trace,
)
from repro.synth.rmrls import synthesize


def lines(*records):
    return io.StringIO(
        "".join(json.dumps(record) + "\n" for record in records)
    )


class TestSummarizeTrace:
    def test_empty_stream(self):
        summary = summarize_trace(io.StringIO(""))
        assert summary["events"] == {}
        assert summary["queue_depth"]["samples"] == 0
        assert summary["queue_depth"]["max"] is None
        assert summary["finish"] is None

    def test_counts_and_substitutions(self):
        summary = summarize_trace(lines(
            {"event": "pop", "step": 1, "queue_size": 3},
            {"event": "child", "step": 1, "sub": "a = a + b"},
            {"event": "child", "step": 1, "sub": "a = a + b"},
            {"event": "child", "step": 1, "sub": "b = b + 1"},
        ))
        assert summary["events"] == {"pop": 1, "child": 3}
        assert summary["top_substitutions"][0] == {
            "substitution": "a = a + b", "count": 2,
        }
        assert summary["distinct_substitutions"] == 2

    def test_top_limit(self):
        records = [
            {"event": "child", "step": 1, "sub": f"s{i}"} for i in range(8)
        ]
        summary = summarize_trace(lines(*records), top=3)
        assert len(summary["top_substitutions"]) == 3
        assert summary["distinct_substitutions"] == 8

    def test_queue_percentiles(self):
        records = [
            {"event": "pop", "step": i, "queue_size": size}
            for i, size in enumerate(range(1, 101))
        ]
        summary = summarize_trace(lines(*records))
        depth = summary["queue_depth"]
        assert depth["p50"] == 50
        assert depth["p90"] == 90
        assert depth["p99"] == 99
        assert depth["max"] == 100
        assert depth["samples"] == 100

    def test_restart_timeline_and_solutions(self):
        summary = summarize_trace(lines(
            {"event": "restart", "step": 40, "seed": 3},
            {"event": "solution", "step": 55, "node": 9, "depth": 4},
        ))
        assert summary["restarts"] == [{"step": 40, "seed": 3}]
        assert summary["solutions"] == [
            {"step": 55, "node": 9, "depth": 4}
        ]

    def test_finish_captured(self):
        summary = summarize_trace(lines(
            {"event": "finish", "step": 9, "reason": "solved",
             "stats": {"steps": 9}},
        ))
        assert summary["finish"]["reason"] == "solved"
        assert summary["steps"] == 9

    def test_malformed_json_skipped_and_counted(self):
        summary = summarize_trace(
            io.StringIO('{"event": "pop"}\nnot json\n{"event": "pop"}\n')
        )
        assert summary["events"] == {"pop": 2}
        assert summary["skipped_lines"] == 1

    def test_missing_event_key_skipped_and_counted(self):
        summary = summarize_trace(lines({"step": 1}, {"event": "pop"}))
        assert summary["events"] == {"pop": 1}
        assert summary["skipped_lines"] == 1

    def test_truncated_tail_line_skipped(self):
        # A SIGKILLed writer leaves at most one partial trailing line;
        # the summary must survive it and surface the count.
        summary = summarize_trace(
            io.StringIO('{"event": "pop", "step": 1}\n{"event": "po')
        )
        assert summary["events"] == {"pop": 1}
        assert summary["skipped_lines"] == 1
        assert "skipped 1 malformed line" in render_trace_summary(summary)

    def test_blank_lines_skipped(self):
        summary = summarize_trace(
            io.StringIO('\n{"event": "pop", "step": 1}\n\n')
        )
        assert summary["events"] == {"pop": 1}


class TestAgainstRealTrace:
    @pytest.fixture
    def trace_text(self):
        buffer = io.StringIO()
        synthesize(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]).to_pprm(),
            observers=(JsonlTraceObserver(buffer),),
        )
        return buffer.getvalue()

    def test_summary_consistent_with_run(self, trace_text):
        summary = summarize_trace(io.StringIO(trace_text))
        assert summary["finish"]["reason"] == "solved"
        stats = summary["finish"]["stats"]
        assert summary["events"]["pop"] == stats["steps"]
        assert summary["queue_depth"]["samples"] == stats["steps"]
        assert stats["hot_ops"]["substitutions_applied"] > 0

    def test_render(self, trace_text):
        summary = summarize_trace(io.StringIO(trace_text))
        text = render_trace_summary(summary)
        assert "queue depth" in text
        assert "top substitutions" in text
        assert "finish: solved" in text
        assert "hot ops:" in text

    def test_render_truncated_trace(self):
        summary = summarize_trace(lines({"event": "pop", "step": 1}))
        assert "truncated" in render_trace_summary(summary)
