"""Bench reports, trajectories, kernels, and the suite runner."""

import json

import pytest

from repro.perf.hotops import HotOpCounters
from repro.perf.kernels import (
    KERNELS,
    WORKLOADS,
    kernel_names,
    run_kernel,
    run_workload,
    workload_names,
)
from repro.perf.report import (
    BENCH_REPORT_SCHEMA,
    BENCH_REPORT_VERSION,
    bench_slug as slug_of,  # aliased: pytest collects bench_* names
    build_bench_report,
    git_info,
    validate_bench_report,
    write_bench_report,
    write_pytest_bench_report,
)
from repro.perf.runner import render_bench_report, run_bench
from repro.perf.trajectory import (
    append_to_trajectory,
    baseline_from_path,
    latest_entry,
    load_trajectory,
    trajectory_path,
)


def minimal_report(workload="quick", **overrides):
    report = build_bench_report(workload=workload)
    report.update(overrides)
    return report


class TestGitInfo:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("RMRLS_GIT_SHA", "cafe0001")
        assert git_info() == {"sha": "cafe0001", "dirty": None}

    def test_outside_repository(self, tmp_path):
        info = git_info(cwd=str(tmp_path))
        assert info["sha"] is None

    def test_inside_repository(self):
        info = git_info()
        assert info["sha"] is None or len(info["sha"]) == 40


class TestReportSchema:
    def test_build_validates(self):
        report = build_bench_report(
            workload="quick",
            hot_ops={"queue_pops": 3},
            metrics={"kernel_x_ns_per_op": 12.5},
        )
        assert validate_bench_report(report) is report
        assert report["schema"] == BENCH_REPORT_SCHEMA
        assert report["version"] == BENCH_REPORT_VERSION

    @pytest.mark.parametrize("mutate, match", [
        (lambda r: r.update(schema="bogus"), "schema"),
        (lambda r: r.update(version=1), "version"),
        (lambda r: r.pop("metrics"), "missing key"),
        (lambda r: r.update(metrics={"x": "fast"}), "not a number"),
        (lambda r: r.update(metrics={"x": True}), "not a number"),
        (lambda r: r.update(hot_ops={"x": 1.5}), "not an integer"),
        (lambda r: r.update(kernels={"k": {}}), "ns_per_op"),
        (lambda r: r["git"].pop("sha"), "sha"),
    ])
    def test_rejects_malformed(self, mutate, match):
        report = minimal_report()
        mutate(report)
        with pytest.raises(ValueError, match=match):
            validate_bench_report(report)

    def test_write_and_reload(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_report(minimal_report(), path)
        reloaded = json.loads(path.read_text())
        assert validate_bench_report(reloaded)

    def test_slug(self):
        assert slug_of("benchmarks/x.py::test[a b]") == (
            "benchmarks_x.py_test_a_b"
        )


class TestPytestReportWriter:
    def test_writes_valid_report(self, tmp_path):
        path = write_pytest_bench_report(
            str(tmp_path),
            "benchmarks/bench_x.py::bench_x",
            1.5,
            hot_ops={"queue_pops": 7, "dedupe_hits": 0},
            scale="2",
        )
        report = validate_bench_report(json.loads(open(path).read()))
        assert report["metrics"]["bench_seconds"] == 1.5
        assert report["metrics"]["hotop_queue_pops"] == 7
        assert report["config"]["scale"] == "2"
        assert report["workload"] == "benchmarks/bench_x.py::bench_x"


class TestTrajectory:
    def test_create_append_load(self, tmp_path):
        path = trajectory_path("quick", str(tmp_path))
        assert path.endswith("BENCH_quick.json")
        append_to_trajectory(minimal_report(), path)
        append_to_trajectory(minimal_report(), path)
        document = load_trajectory(path)
        assert len(document["entries"]) == 2
        assert latest_entry(document) == document["entries"][-1]

    def test_workload_mismatch_rejected(self, tmp_path):
        path = trajectory_path("quick", str(tmp_path))
        append_to_trajectory(minimal_report("quick"), path)
        with pytest.raises(ValueError, match="tracks workload"):
            append_to_trajectory(minimal_report("full"), path)

    def test_baseline_from_missing_file(self, tmp_path):
        assert baseline_from_path(str(tmp_path / "nope.json")) is None

    def test_baseline_from_trajectory(self, tmp_path):
        path = trajectory_path("quick", str(tmp_path))
        first = minimal_report()
        second = minimal_report()
        second["metrics"] = {"marker_seconds": 1.0}
        append_to_trajectory(first, path)
        append_to_trajectory(second, path)
        baseline = baseline_from_path(path)
        assert baseline["metrics"] == {"marker_seconds": 1.0}

    def test_baseline_from_single_report(self, tmp_path):
        path = tmp_path / "report.json"
        write_bench_report(minimal_report(), path)
        assert baseline_from_path(str(path))["workload"] == "quick"

    def test_baseline_from_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError):
            baseline_from_path(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(str(path))


class TestKernels:
    def test_names(self):
        assert kernel_names() == list(KERNELS)
        assert workload_names() == list(WORKLOADS)
        assert "pprm_substitute" in KERNELS
        assert "exhaustive3" in WORKLOADS

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_kernel("bogus")
        with pytest.raises(ValueError, match="unknown workload"):
            run_workload("bogus")

    def test_run_kernel_quick(self):
        result = run_kernel("queue_churn", quick=True, repeats=3)
        assert result.ns_per_op > 0
        assert len(result.samples) == 3

    def test_kernels_deterministic_ops(self):
        # Fixed seeds: the op count of a kernel is part of the
        # measurement contract and must not drift between runs.
        first = run_kernel("dedupe_probe", quick=True, repeats=1, warmup=0)
        second = run_kernel("dedupe_probe", quick=True, repeats=1, warmup=0)
        assert first.ops == second.ops

    def test_run_workload_quick(self):
        section = run_workload("rd53", quick=True, repeats=1)
        assert section["seconds"] > 0
        assert section["hot_ops"]["substitutions_applied"] > 0
        assert section["summary"]["steps"] > 0


class TestRunBench:
    def test_selection_and_metrics(self):
        report = run_bench(
            quick=True, kernels="queue_churn", workloads="none", repeats=2
        )
        assert list(report["kernels"]) == ["queue_churn"]
        assert report["workloads"] == {}
        assert "kernel_queue_churn_ns_per_op" in report["metrics"]
        assert report["workload"] == "quick"

    def test_workload_hotops_aggregated(self):
        report = run_bench(
            quick=True, kernels="none", workloads="rd53"
        )
        assert report["hot_ops"]["substitutions_applied"] > 0
        assert report["metrics"]["hotop_substitutions_applied"] == (
            report["hot_ops"]["substitutions_applied"]
        )
        assert "workload_rd53_seconds" in report["metrics"]

    def test_unknown_selection(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_bench(kernels="bogus")

    def test_progress_callback(self):
        lines = []
        run_bench(
            quick=True, kernels="queue_churn", workloads="none",
            repeats=1, warmup=0, progress=lines.append,
        )
        assert lines == ["kernel queue_churn"]

    def test_render(self):
        report = run_bench(
            quick=True, kernels="queue_churn", workloads="none", repeats=2
        )
        text = render_bench_report(report)
        assert "queue_churn" in text
        assert "ns/op" in text


class TestHotOpTotalsHelper:
    def test_merge_dict_tolerates_foreign_keys(self):
        totals = HotOpCounters()
        totals.merge_dict({"queue_pops": 1, "from_the_future": 2})
        assert totals.queue_pops == 1
