"""Flight recorder: ring-file durability, crash dumps, pool recovery.

The ring tests tamper with the on-disk bytes directly (a torn slot is
exactly one mid-memcpy SIGKILL away); the pool tests inject a real
SIGKILL via ``RMRLS_FLIGHT_FAULTS`` and assert the coordinator turns
the victim's ring into a validated, replayable crash dump.
"""

import json
import os
import random

import pytest

from repro.harness import WorkerPool, permutation_task
from repro.obs.flight import (
    DUMP_STATUSES,
    EVERY_ENV_VAR,
    FAULTS_ENV_VAR,
    FlightRecorder,
    RingFile,
    dump_checksum,
    fold_digest,
    load_dump,
    parse_faults,
    recover_ring,
    replay_dump,
    scan_flight_dir,
    validate_dump,
)
from repro.synth.options import SynthesisOptions


class TestRingFile:
    def test_roundtrip_preserves_order(self, tmp_path):
        ring = RingFile(str(tmp_path / "r.ring"))
        for index in range(10):
            ring.append({"k": "step", "seq": index})
        ring.close()
        records, dropped = RingFile.read(str(tmp_path / "r.ring"))
        assert dropped == 0
        assert [record["seq"] for record in records] == list(range(10))

    def test_eviction_keeps_newest_slot_count(self, tmp_path):
        ring = RingFile(str(tmp_path / "r.ring"), slot_count=8)
        for index in range(20):
            ring.append({"k": "step", "seq": index})
        ring.close()
        records, dropped = RingFile.read(str(tmp_path / "r.ring"))
        assert dropped == 0
        assert [record["seq"] for record in records] == list(range(12, 20))

    def test_oversize_payload_keeps_the_envelope(self, tmp_path):
        ring = RingFile(str(tmp_path / "r.ring"), slot_size=64)
        ring.append({"k": "step", "seq": 3, "t": 0.5, "blob": "x" * 500})
        ring.close()
        [record], dropped = RingFile.read(str(tmp_path / "r.ring"))
        assert dropped == 0
        assert record["truncated"] is True
        assert record["seq"] == 3
        assert "blob" not in record

    def test_torn_slot_fails_crc_and_is_counted(self, tmp_path):
        path = str(tmp_path / "r.ring")
        ring = RingFile(path, slot_size=64)
        for index in range(3):
            ring.append({"k": "step", "seq": index})
        ring.close()
        # Flip payload bytes inside the middle slot: header is 32
        # bytes, so slot 1 starts at 32 + 64.
        with open(path, "r+b") as handle:
            handle.seek(32 + 64 + 8)
            handle.write(b"\xff\xff\xff\xff")
        records, dropped = RingFile.read(path)
        assert dropped == 1
        assert [record["seq"] for record in records] == [0, 2]

    def test_non_ring_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.ring"
        path.write_bytes(b"not a ring at all" * 16)
        with pytest.raises(ValueError, match="bad magic"):
            RingFile.read(str(path))


class TestFaultSpecs:
    def test_absent_and_none_disable(self):
        assert parse_faults(None) is None
        assert parse_faults("") is None
        assert parse_faults("none") is None

    def test_sigkill_at_n(self):
        assert parse_faults("sigkill@7") == ("sigkill", 7)

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            parse_faults("sigkill@0")
        with pytest.raises(ValueError):
            parse_faults("explode@3")


class TestDigest:
    def test_deterministic_and_order_sensitive(self):
        a = fold_digest(fold_digest(0, 1, 2), 3)
        assert a == fold_digest(0, 1, 2, 3)
        assert fold_digest(0, 1, 2) != fold_digest(0, 2, 1)
        assert 0 <= a < (1 << 64)


class TestDumps:
    def test_write_then_load_roundtrips(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "p.ring"),
                                  meta={"process": "t"}, faults="none")
        recorder.record("step", step=1, digest=42)
        recorder.decision("bound_adopted", poll=1, depth=9)
        path = recorder.write_dump(reason="crash", error="synthetic")
        document = load_dump(path)
        assert document["reason"] == "crash"
        assert document["decisions"][0]["depth"] == 9
        # write_dump retires the ring: a clean dump leaves no ring
        # behind for the coordinator to double-recover.
        assert not os.path.exists(str(tmp_path / "p.ring"))

    def test_tampered_dump_fails_validation(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "p.ring"),
                                  meta={"process": "t"}, faults="none")
        recorder.record("step", step=1, digest=42)
        path = recorder.write_dump(reason="crash", error=None)
        with open(path) as handle:
            document = json.load(handle)
        document["events"][0]["digest"] = 43
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="checksum"):
            load_dump(path)
        document["checksum"] = dump_checksum(document)
        validate_dump(document)  # re-checksummed tamper is consistent

    def test_clean_exit_leaves_nothing(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "p.ring"),
                                  meta={"process": "t"}, faults="none")
        recorder.record("step", step=1)
        recorder.decision("bound_adopted", poll=1, depth=5)
        recorder.discard()
        assert os.listdir(tmp_path) == []

    def test_recover_ring_marks_recovered(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "p.ring"),
                                  meta={"process": "t"}, faults="none")
        for index in range(5):
            recorder.record("step", step=index, digest=index)
        recorder.decision("bound_adopted", poll=2, depth=7)
        recorder.close()  # simulate a silent death: files stay behind
        document = recover_ring(str(tmp_path / "p.ring"),
                                reason="oom", error="killed")
        validate_dump(document)
        assert document["recovered"] is True
        assert document["reason"] == "oom"
        assert len(document["events"]) == 6  # 5 steps + the decision
        assert document["decisions"][0]["poll"] == 2


class TestScan:
    def test_counts_rings_and_dumps(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "a.ring"),
                                  meta={}, faults="none")
        recorder.record("step", step=1)
        other = FlightRecorder(str(tmp_path / "b.ring"),
                               meta={}, faults="none")
        other.record("step", step=1)
        other.write_dump(reason="crash", error=None)
        counts = scan_flight_dir(str(tmp_path))
        assert counts == {"rings": 1, "dumps": 1}
        recorder.discard()


class TestOverheadBudget:
    def test_recorder_stays_within_five_percent_of_a_step(self):
        from repro.perf.kernels import run_workload

        section = run_workload("flight_overhead", quick=True, repeats=1)
        metrics = section["summary"]["metrics"]
        assert metrics["within_budget"] == 1.0, metrics


def _shuffled_permutation(seed: int, size: int = 16) -> list[int]:
    images = list(range(size))
    random.Random(seed).shuffle(images)
    return images


class TestPoolRecovery:
    def test_sigkilled_worker_leaves_replayable_dump(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(EVERY_ENV_VAR, "1")
        monkeypatch.setenv(FAULTS_ENV_VAR, "sigkill@20")
        task = permutation_task(
            _shuffled_permutation(2004),
            options=SynthesisOptions(max_steps=4000),
        )
        pool = WorkerPool(flight_dir=str(tmp_path))
        [outcome] = pool.run([task])
        assert outcome.status in DUMP_STATUSES
        dump_path = outcome.extra["flight_dump"]
        document = load_dump(dump_path)
        assert document["recovered"] is True
        assert document["meta"]["task_id"] == task.task_id
        assert document["last_step"] > 0
        verdict = replay_dump(document)
        assert verdict["ok"] is True
        assert verdict["checked"] > 0
        # Every ring was either dumped or discarded.
        assert scan_flight_dir(str(tmp_path))["rings"] == 0

    def test_clean_worker_leaves_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        task = permutation_task(
            [1, 0, 2, 3], options=SynthesisOptions(max_steps=4000)
        )
        pool = WorkerPool(flight_dir=str(tmp_path))
        [outcome] = pool.run([task])
        assert outcome.status == "ok"
        assert scan_flight_dir(str(tmp_path)) == {"rings": 0, "dumps": 0}
