"""Tests for the priority function (equation (4)) and the max-queue."""

import pytest

from repro.synth.node import SearchNode
from repro.synth.options import SynthesisOptions
from repro.synth.priority import MaxPriorityQueue, node_priority


class TestEquation4:
    def test_paper_weights(self):
        options = SynthesisOptions()
        # priority = 0.3*depth + 0.6*elim/depth - 0.1*literals
        assert node_priority(1, 3, 2, options) == pytest.approx(
            0.3 + 1.8 - 0.2
        )

    def test_depth_preference(self):
        """All things being equal, deeper nodes score higher."""
        options = SynthesisOptions()
        shallow = node_priority(1, 0, 0, options)
        deep = node_priority(5, 0, 0, options)
        assert deep > shallow

    def test_elimination_preference(self):
        options = SynthesisOptions()
        assert node_priority(2, 6, 1, options) > node_priority(2, 1, 1, options)

    def test_literal_penalty(self):
        options = SynthesisOptions()
        assert node_priority(2, 3, 0, options) > node_priority(2, 3, 4, options)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            node_priority(0, 1, 1, SynthesisOptions())

    def test_custom_weights(self):
        options = SynthesisOptions(alpha=1.0, beta=0.0, gamma=0.0)
        assert node_priority(7, 100, 100, options) == pytest.approx(7.0)


def _node(priority, node_id=0):
    import repro.pprm.system as system_module

    system = system_module.PPRMSystem.identity(2)
    node = SearchNode.root(system, node_id=node_id)
    node.priority = priority
    return node


class TestMaxPriorityQueue:
    def test_pops_highest_first(self):
        queue = MaxPriorityQueue()
        for value in (1.0, 5.0, 3.0):
            queue.push(_node(value))
        assert queue.pop().priority == 5.0
        assert queue.pop().priority == 3.0
        assert queue.pop().priority == 1.0

    def test_fifo_tie_break(self):
        queue = MaxPriorityQueue()
        first = _node(2.0, node_id=1)
        second = _node(2.0, node_id=2)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_infinite_priority_first(self):
        queue = MaxPriorityQueue()
        queue.push(_node(10.0))
        queue.push(_node(float("inf")))
        assert queue.pop().priority == float("inf")

    def test_empty_behaviour(self):
        queue = MaxPriorityQueue()
        assert queue.is_empty()
        assert not queue
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.pop()
        with pytest.raises(IndexError):
            queue.peek()

    def test_peek_does_not_remove(self):
        queue = MaxPriorityQueue()
        queue.push(_node(1.0))
        assert queue.peek().priority == 1.0
        assert len(queue) == 1

    def test_clear(self):
        queue = MaxPriorityQueue()
        queue.push(_node(1.0))
        queue.clear()
        assert queue.is_empty()
