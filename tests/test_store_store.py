"""The crash-safe canonical circuit store (repro.store.store).

Covers the durable lifecycle — put/get with canonical-key dedup,
segment rolling, index snapshots, reload — and the damage path: every
injectable fault kind, tolerant scanning, verify/repair quarantine
semantics, gc compaction, and export.
"""

import json
import os

import pytest

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.gates.toffoli import ToffoliGate
from repro.store import (
    CircuitStore,
    FaultPlan,
    InjectedFault,
    StoreReadOnly,
    canonicalize,
    scan_segment,
)

NOT_A = Circuit(3, [ToffoliGate(0, 0)])
SWAP_AB = Circuit(3, [ToffoliGate(0b001, 1), ToffoliGate(0b010, 0),
                      ToffoliGate(0b001, 1)])


def put_circuit(store, circuit, **provenance):
    canonical = canonicalize(circuit.to_permutation())
    return store.put(canonical, circuit, provenance=provenance or None)


def fill(store, rng, count, num_lines=3):
    """Append ``count`` random *distinct-function* circuits."""
    seen = set()
    while len(seen) < count:
        gates = []
        for _ in range(rng.randint(1, 6)):
            target = rng.randrange(num_lines)
            controls = rng.randrange(1 << num_lines) & ~(1 << target)
            gates.append(ToffoliGate(controls, target))
        circuit = Circuit(num_lines, gates)
        canonical = canonicalize(circuit.to_permutation())
        if canonical.key in seen:
            continue
        record, stored = store.put(canonical, circuit)
        if stored:
            seen.add(canonical.key)
    return seen


class TestLifecycle:
    def test_put_get_round_trip(self, tmp_path):
        store = CircuitStore(str(tmp_path / "s"))
        record, stored = put_circuit(store, NOT_A, source="test")
        assert stored
        again = store.get(record.key)
        assert again is not None
        assert again.circuit().implements(NOT_A.to_permutation())
        assert again.provenance["source"] == "test"

    def test_relabeled_duplicates_share_one_key(self, tmp_path):
        store = CircuitStore(str(tmp_path / "s"))
        # NOT(a) and NOT(b) are the same function up to relabeling.
        not_b = Circuit(3, [ToffoliGate(0, 1)])
        _, first = put_circuit(store, NOT_A)
        _, second = put_circuit(store, not_b)
        assert first and not second
        assert len(store) == 1

    def test_only_improvements_are_stored(self, tmp_path):
        store = CircuitStore(str(tmp_path / "s"))
        padded = Circuit(3, list(SWAP_AB.gates) + [ToffoliGate(0, 2),
                                                   ToffoliGate(0, 2)])
        record, stored = put_circuit(store, padded)
        assert stored and record.gates == 5
        better, improved = put_circuit(store, SWAP_AB)
        assert improved and better.gates == 3
        worse, stored_again = put_circuit(store, padded)
        assert not stored_again
        assert worse.gates == 3  # the best-known record comes back

    def test_stored_record_replays_onto_caller_wires(self, tmp_path):
        store = CircuitStore(str(tmp_path / "s"))
        canonical = canonicalize(SWAP_AB.to_permutation())
        store.put(canonical, SWAP_AB)
        stored = store.get(canonical.key)
        replayed = canonical.from_canonical(stored.circuit())
        assert replayed.implements(SWAP_AB.to_permutation())

    def test_reload_sees_everything(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        keys = fill(store, rng, 10)
        store.close()
        reopened = CircuitStore(root, read_only=True)
        assert set(reopened.keys()) == keys

    def test_segments_roll(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root, segment_max_records=3)
        fill(store, rng, 8)
        store.close()
        segments = os.listdir(os.path.join(root, "segments"))
        assert len(segments) >= 3
        assert len(CircuitStore(root, read_only=True)) == 8

    def test_index_snapshot_is_written(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root, index_every=2)
        fill(store, rng, 5)
        document = json.load(open(os.path.join(root, "index.json")))
        assert document["schema"].endswith("-index")
        assert document["keys"] >= 4

    def test_read_only_refuses_writes(self, tmp_path):
        root = str(tmp_path / "s")
        CircuitStore(root).close()
        store = CircuitStore(root, read_only=True)
        with pytest.raises(StoreReadOnly):
            put_circuit(store, NOT_A)
        with pytest.raises(StoreReadOnly):
            store.repair()

    def test_stats_shape(self, tmp_path, rng):
        store = CircuitStore(str(tmp_path / "s"))
        fill(store, rng, 4)
        stats = store.stats()
        assert stats["keys"] == 4
        assert stats["records"] >= 4
        assert stats["segments"] == 1
        assert stats["bytes"] > 0
        assert stats["quarantined_lines"] == 0

    def test_export_emits_valid_segment_lines(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 5)
        out = tmp_path / "export.jsonl"
        with open(out, "w") as handle:
            count = store.export(handle)
        assert count == 5
        scan = scan_segment(str(out))
        assert len(scan.records) == 5 and not scan.problems


class TestDamage:
    def _segment_path(self, root):
        segment_dir = os.path.join(root, "segments")
        (name,) = os.listdir(segment_dir)
        return os.path.join(segment_dir, name)

    def test_torn_tail_detected_and_repaired(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 5)
        store.close()
        path = self._segment_path(root)
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 10)
        store = CircuitStore(root)
        assert len(store) == 4  # the torn record is not served
        report = store.verify()
        assert not report["ok"] and report["problems"] == {"torn": 1}
        repaired = store.repair()
        assert repaired["quarantined"] == 1
        assert store.verify(deep=True)["ok"]
        assert store.stats()["quarantined_lines"] == 1

    def test_bit_flip_fails_checksum(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 3)
        store.close()
        path = self._segment_path(root)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"gates"', b'"gatez"', 1)
        open(path, "wb").write(b"".join(lines))
        store = CircuitStore(root)
        report = store.verify()
        assert report["problems"] == {"checksum": 1}
        store.repair()
        assert store.verify(deep=True)["ok"]

    def test_quarantine_preserves_raw_lines(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 3)
        store.close()
        path = self._segment_path(root)
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 10)
        store = CircuitStore(root)
        store.repair()
        quarantine_dir = os.path.join(root, "quarantine")
        files = os.listdir(quarantine_dir)
        assert len(files) == 1
        content = open(os.path.join(quarantine_dir, files[0])).read()
        assert "torn" in content

    def test_deep_repair_quarantines_lying_records(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 3)
        store.close()
        # Re-checksum a record whose body claims the wrong key: it is
        # structurally valid, so only deep verification catches it.
        from repro.store.segments import encode_record

        path = self._segment_path(root)
        lines = open(path).read().splitlines()
        record = json.loads(lines[0])
        record["key"] = "0" * 32
        record.pop("sum")
        lines[0] = encode_record(record).rstrip("\n")
        open(path, "w").write("\n".join(lines) + "\n")
        store = CircuitStore(root)
        assert store.verify()["ok"]  # shallow scan cannot see the lie
        deep = store.verify(deep=True)
        assert not deep["ok"] and len(deep["replay_failures"]) == 1
        store.repair(deep=True)
        assert store.verify(deep=True)["ok"]

    def test_gc_compacts_to_best_per_key(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root, segment_max_records=2)
        padded = Circuit(3, list(SWAP_AB.gates) + [ToffoliGate(0, 2),
                                                   ToffoliGate(0, 2)])
        put_circuit(store, padded)
        put_circuit(store, SWAP_AB)
        fill(store, rng, 4)
        before = store.stats()
        report = store.gc()
        after = store.stats()
        assert report["dropped"] >= 1  # the superseded 5-gate record
        assert after["records"] == after["keys"] == before["keys"]
        assert store.get(canonicalize(SWAP_AB.to_permutation()).key).gates == 3
        assert store.verify(deep=True)["ok"]


class TestFaultInjection:
    def test_torn_write_fault_leaves_recoverable_store(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root, faults=FaultPlan("torn_write@3"))
        with pytest.raises(InjectedFault):
            fill(store, rng, 5)
        store.close()
        recovered = CircuitStore(root)
        assert len(recovered) == 2  # everything before the tear survives
        assert recovered.verify()["problems"] == {"torn": 1}
        recovered.repair()
        assert recovered.verify(deep=True)["ok"]

    def test_checksum_flip_fault_is_caught_on_reload(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root, faults=FaultPlan("checksum_flip@2"))
        fill(store, rng, 4)
        store.close()
        recovered = CircuitStore(root)
        assert len(recovered) == 3
        assert recovered.verify()["problems"] == {"checksum": 1}
        recovered.repair()
        assert recovered.verify(deep=True)["ok"]

    def test_short_read_fault_truncates_the_scan(self, tmp_path, rng):
        root = str(tmp_path / "s")
        store = CircuitStore(root)
        fill(store, rng, 6)
        store.close()
        hobbled = CircuitStore(
            root, read_only=True, faults=FaultPlan("short_read@1")
        )
        assert len(hobbled) < 6  # the short read hides tail records...
        clean = CircuitStore(root, read_only=True)
        assert len(clean) == 6  # ...but the bytes on disk are intact

    def test_fault_plan_from_env(self, tmp_path, monkeypatch, rng):
        monkeypatch.setenv("RMRLS_STORE_FAULTS", "torn_write@2")
        store = CircuitStore(str(tmp_path / "s"))
        with pytest.raises(InjectedFault):
            fill(store, rng, 4)

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("explode@1")
        with pytest.raises(ValueError):
            FaultPlan("torn_write@zero")
