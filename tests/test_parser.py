"""Tests for repro.pprm.parser."""

import pytest

from repro.pprm.expansion import Expansion
from repro.pprm.parser import (
    format_expansion,
    format_system,
    parse_expansion,
    parse_system,
    parse_term,
)


class TestParseTerm:
    def test_single_literal(self):
        assert parse_term("a") == 0b001

    def test_product(self):
        assert parse_term("ac") == 0b101

    def test_constant(self):
        assert parse_term("1") == 0

    def test_extended_names(self):
        assert parse_term("x10") == 1 << 10

    def test_mixed_extended_and_short(self):
        assert parse_term("ax3") == 0b1001

    def test_explicit_product_symbols(self):
        assert parse_term("a*c") == 0b101
        assert parse_term("a·c") == 0b101

    def test_duplicate_literal_rejected(self):
        with pytest.raises(ValueError):
            parse_term("aa")

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            parse_term("0")

    def test_constant_mixed_with_literals_rejected(self):
        with pytest.raises(ValueError):
            parse_term("1a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_term("  ")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_term("a$b")


class TestParseExpansion:
    def test_paper_notation(self):
        e = parse_expansion("b + c + ac")
        assert e.terms == frozenset({0b010, 0b100, 0b101})

    def test_xor_separators(self):
        for text in ("a ^ 1", "a (+) 1", "a ⊕ 1", "a + 1"):
            assert parse_expansion(text).terms == frozenset({0b1, 0})

    def test_zero(self):
        assert parse_expansion("0").is_zero()
        assert parse_expansion("").is_zero()

    def test_duplicates_cancel(self):
        assert parse_expansion("a + a").is_zero()

    def test_empty_operand_rejected(self):
        with pytest.raises(ValueError):
            parse_expansion("a + + b")


class TestParseSystem:
    def test_round_trip(self, fig1_spec):
        system = fig1_spec.to_pprm()
        assert parse_system(format_system(system)) == system

    def test_accepts_out_suffixes(self):
        text = "aout = b\nb_out = a"
        system = parse_system(text)
        assert system.output(0).terms == frozenset({0b10})

    def test_comments_and_blanks(self):
        system = parse_system("# comment\n\na_out = a\n")
        assert system.is_identity()

    def test_duplicate_output_rejected(self):
        with pytest.raises(ValueError):
            parse_system("a_out = a\na_out = b")

    def test_missing_output_rejected(self):
        with pytest.raises(ValueError):
            parse_system("a_out = a\nc_out = c")

    def test_no_equals_rejected(self):
        with pytest.raises(ValueError):
            parse_system("nonsense")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_system("   \n  ")


class TestFormatting:
    def test_format_expansion_custom_separator(self):
        e = parse_expansion("a + b")
        assert format_expansion(e, " (+) ") == "a (+) b"

    def test_format_zero(self):
        assert format_expansion(Expansion.zero()) == "0"

    def test_format_system_order(self, fig1_spec):
        lines = format_system(fig1_spec.to_pprm()).splitlines()
        assert lines[0].startswith("c_out")
        assert lines[-1].startswith("a_out")
