"""Unit tests for the scalability driver's helper functions."""

from repro.circuits.circuit import Circuit
from repro.experiments.table567 import _same_function
from repro.gates.toffoli import ToffoliGate


class TestSameFunction:
    def test_identical_small(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF2(a, b)")
        assert _same_function(circuit, circuit)

    def test_reordered_commuting_gates(self):
        a = Circuit.parse(3, "TOF1(c) TOF2(a, b)")
        b = Circuit.parse(3, "TOF2(a, b) TOF1(c)")
        assert _same_function(a, b)

    def test_different_small(self):
        a = Circuit.parse(2, "TOF1(a)")
        b = Circuit.parse(2, "TOF1(b)")
        assert not _same_function(a, b)

    def test_width_mismatch(self):
        assert not _same_function(Circuit.identity(2), Circuit.identity(3))

    def test_wide_sampled_path(self):
        chain = [ToffoliGate(1 << (i + 1), i) for i in range(16)]
        wide = Circuit(17, chain)
        assert _same_function(wide, wide, max_exhaustive=12, samples=300)
        tampered = wide.appended(ToffoliGate(0, 0))
        assert not _same_function(
            wide, tampered, max_exhaustive=12, samples=300
        )
