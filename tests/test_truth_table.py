"""Tests for repro.functions.truth_table."""

import pytest

from repro.functions.truth_table import TruthTable


class TestConstruction:
    def test_from_function(self):
        table = TruthTable.from_function(2, 1, lambda m: m & 1)
        assert table.rows == (0, 1, 0, 1)

    def test_single_output(self):
        table = TruthTable.single_output([1, 0, 0, 1])
        assert table.num_inputs == 2
        assert table.num_outputs == 1

    def test_row_count_checked(self):
        with pytest.raises(ValueError):
            TruthTable(2, 1, [0, 1, 0])

    def test_word_range_checked(self):
        with pytest.raises(ValueError):
            TruthTable(1, 1, [0, 2])

    def test_dimensions_positive(self):
        with pytest.raises(ValueError):
            TruthTable(0, 1, [0])

    def test_bad_vector_length(self):
        with pytest.raises(ValueError):
            TruthTable.single_output([0, 1, 1])


class TestQueries:
    def test_call(self):
        table = TruthTable(2, 2, [0, 1, 2, 3])
        assert table(2) == 2

    def test_output_vector(self):
        table = TruthTable(2, 2, [0b00, 0b01, 0b10, 0b11])
        assert table.output_vector(0) == [0, 1, 0, 1]
        assert table.output_vector(1) == [0, 0, 1, 1]

    def test_output_vector_range(self):
        with pytest.raises(ValueError):
            TruthTable(1, 1, [0, 1]).output_vector(1)

    def test_reversibility_check(self):
        assert TruthTable(2, 2, [0, 1, 2, 3]).is_reversible()
        assert not TruthTable(2, 2, [0, 0, 2, 3]).is_reversible()
        assert not TruthTable(2, 1, [0, 1, 1, 0]).is_reversible()

    def test_multiplicity_full_adder(self):
        def row(m):
            a, b, c = m & 1, m >> 1 & 1, m >> 2 & 1
            carry = 1 if a + b + c >= 2 else 0
            total = (a + b + c) & 1
            return (carry << 2) | (total << 1) | (a ^ b)

        table = TruthTable.from_function(3, 3, row)
        # Fig. 2(a): two output words each appear twice.
        assert table.max_output_multiplicity() == 2

    def test_equality_and_hash(self):
        a = TruthTable(1, 1, [0, 1])
        b = TruthTable(1, 1, [0, 1])
        assert a == b
        assert len({a, b}) == 1
        assert a != TruthTable(1, 1, [1, 0])
