"""Tests for the Miller-Dueck spectral synthesis baseline [18]."""

import random

import pytest

from repro.baselines.spectral_synthesis import (
    complexity_of,
    spectral_synthesize,
)
from repro.functions.permutation import Permutation


class TestComplexityMeasure:
    def test_identity_is_zero(self):
        assert complexity_of(list(range(8)), 3) == 0

    def test_non_identity_positive(self):
        assert complexity_of([1, 0, 2, 3], 2) > 0

    def test_polarity_visible(self):
        """A NOT away from identity scores lower than random chaos."""
        near = complexity_of([1, 0, 3, 2], 2)      # NOT on line 0
        far = complexity_of([2, 1, 3, 0], 2)
        assert 0 < near < far

    def test_measure_decreases_along_a_fix(self):
        # {1,0,3,2} fixed by one NOT: applying it zeroes the measure.
        images = [1, 0, 3, 2]
        fixed = [word ^ 1 for word in images]
        assert complexity_of(fixed, 2) == 0


class TestSpectralSynthesis:
    def test_identity(self):
        outcome = spectral_synthesize(Permutation.identity(3))
        assert outcome.solved
        assert outcome.circuit.gate_count() == 0

    def test_single_not(self):
        spec = Permutation([1, 0, 3, 2])
        outcome = spectral_synthesize(spec)
        assert outcome.solved
        assert outcome.circuit.gate_count() == 1
        assert outcome.circuit.implements(spec)

    def test_fig1_example(self, fig1_spec):
        outcome = spectral_synthesize(fig1_spec)
        assert outcome.solved
        assert outcome.circuit.implements(fig1_spec)
        assert outcome.circuit.gate_count() <= 8

    def test_strict_mode_declares_errors(self, rng):
        """[18] without plateau slack gets stuck often — the 'error is
        declared' behaviour the paper describes."""
        errors = 0
        for _ in range(15):
            images = list(range(8))
            rng.shuffle(images)
            outcome = spectral_synthesize(
                Permutation(images), plateau_tolerance=0
            )
            if outcome.error:
                errors += 1
            elif outcome.solved:
                assert outcome.circuit.implements(Permutation(images))
        assert errors >= 5

    def test_plateau_tolerance_raises_success_rate(self):
        rng_a = random.Random(31)
        rng_b = random.Random(31)

        def rate(tolerance, rng):
            solved = 0
            for _ in range(12):
                images = list(range(8))
                rng.shuffle(images)
                outcome = spectral_synthesize(
                    Permutation(images), plateau_tolerance=tolerance
                )
                if outcome.solved:
                    solved += 1
            return solved

        assert rate(4, rng_a) >= rate(0, rng_b)

    def test_all_results_verify(self, rng):
        for _ in range(10):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            outcome = spectral_synthesize(spec)
            if outcome.solved:
                assert outcome.circuit.implements(spec)

    def test_gate_budget_respected(self, rng):
        images = list(range(16))
        rng.shuffle(images)
        outcome = spectral_synthesize(Permutation(images), max_gates=3)
        assert outcome.steps <= 3
