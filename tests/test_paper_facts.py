"""End-to-end checks of facts the paper states explicitly.

These tests pin the reproduction to the paper: equation (3), the worked
examples' printed circuits, Fig. 6's substitution lists, the Table I
optimal columns, and the convergence/completeness discussion of
Sec. IV-F (including the deviations documented in DESIGN.md).
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.pprm.parser import format_system
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

FAST = SynthesisOptions(dedupe_states=True, max_steps=30_000)


class TestEquation3:
    def test_pprm_of_fig1(self, fig1_spec):
        text = format_system(fig1_spec.to_pprm())
        assert text.splitlines() == [
            "c_out = b + ab + ac",
            "b_out = b + c + ac",
            "a_out = 1 + a",
        ]


class TestPrintedCircuits:
    """Every Toffoli cascade printed in Sec. V-C implements its
    specification."""

    CASES = [
        ("TOF3(c, a, b) TOF3(c, b, a) TOF3(c, a, b) TOF1(a)",
         [1, 0, 3, 2, 5, 7, 4, 6], 3),                       # Example 1
        ("TOF1(a) TOF2(a, b) TOF3(b, a, c)",
         [7, 0, 1, 2, 3, 4, 5, 6], 3),                       # Example 2
        ("TOF3(c, a, b) TOF3(c, b, a) TOF3(c, a, b)",
         [0, 1, 2, 3, 4, 6, 5, 7], 3),                       # Example 3
        ("TOF2(c, b) TOF3(c, b, a) TOF3(b, a, c) TOF3(c, b, a) "
         "TOF3(c, b, a) TOF2(c, b)",
         None, 3),                                           # Example 4 (*)
        ("TOF3(b, a, c) TOF2(a, b) TOF1(a)",
         [1, 2, 3, 4, 5, 6, 7, 0], 3),                       # Example 6
        ("TOF4(c, b, a, d) TOF3(b, a, c) TOF2(a, b) TOF1(a)",
         [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0], 4),
        ("TOF3(b, a, d) TOF2(a, b) TOF3(c, b, d) TOF2(b, c)",
         [0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5], 4),
    ]

    @pytest.mark.parametrize("text,images,lines", CASES)
    def test_cascade(self, text, images, lines):
        circuit = Circuit.parse(lines, text)
        if images is None:
            # Example 4's printed cascade contains a repeated adjacent
            # gate pair (TOF3(c,b,a) twice) and does NOT realize its
            # stated swap spec {0,1,2,4,3,5,6,7}; see the
            # acknowledgment of a circuit erratum.  We check only that
            # it parses and is reversible.
            assert circuit.gate_count() == 6
            return
        assert circuit.implements(Permutation(images))

    def test_example4_printed_circuit_is_erroneous(self):
        """The duplicated TOF3(c,b,a) pair cancels, leaving a 4-gate
        cascade that does not implement the swap {0,1,2,4,3,5,6,7}; our
        tool finds a correct 5-gate realization instead."""
        printed = Circuit.parse(
            3,
            "TOF2(c, b) TOF3(c, b, a) TOF3(b, a, c) TOF3(c, b, a) "
            "TOF3(c, b, a) TOF2(c, b)",
        )
        spec = Permutation([0, 1, 2, 4, 3, 5, 6, 7])
        assert not printed.implements(spec)
        result = synthesize(spec, FAST)
        assert result.verify(spec)
        assert result.gate_count <= 6

    def test_rd53_printed_circuit_parses(self):
        text = (
            "TOF3(a, b, f) TOF2(b, a) TOF3(a, c, f) TOF2(c, a) "
            "TOF5(a, b, c, d, g) TOF3(a, d, f) TOF2(a, d) "
            "TOF4(b, d, e, g) TOF2(c, b) TOF3(d, e, f) "
            "TOF5(a, b, d, e, g) TOF5(b, c, d, e, g) TOF2(d, e)"
        )
        circuit = Circuit.parse(7, text)
        assert circuit.gate_count() == 13  # the paper's Table IV count


class TestTable1OptimalColumns:
    def test_both_columns_exact(self):
        from repro.baselines.optimal import optimal_distribution
        from repro.experiments.paper_data import TABLE1
        from repro.gates.library import NCT, NCTS

        assert optimal_distribution(3, NCT) == TABLE1["optimal_nct"]
        assert optimal_distribution(3, NCTS) == TABLE1["optimal_ncts"]


class TestSection4FCompleteness:
    """Sec. IV-F claims the basic algorithm always converges; the
    literal pseudocode does not (DESIGN.md/EXPERIMENTS.md), and these
    tests pin the measured boundary."""

    def test_default_rules_solve_sampled_functions(self, rng):
        for _ in range(15):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize(spec, FAST)
            assert result.solved, images
            assert result.verify(spec)

    def test_literal_rules_fail_on_wire_swap(self):
        spec = Permutation([0, 2, 1, 3, 4, 6, 5, 7])
        literal = FAST.with_(growth_exempt_literals=0, max_steps=10_000)
        assert not synthesize(spec, literal).solved

    def test_average_tracks_paper_table1(self, rng):
        """Sampled average gate count should sit near the paper's 6.10
        (and never beat the optimal column's 5.87)."""
        total = 0
        count = 40
        for _ in range(count):
            images = list(range(8))
            rng.shuffle(images)
            result = synthesize(Permutation(images), FAST)
            total += result.gate_count
        average = total / count
        assert 5.5 <= average <= 6.8
