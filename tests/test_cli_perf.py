"""CLI coverage for ``rmrls bench`` and ``rmrls trace summarize``."""

import json

import pytest

from repro.cli import main

#: Fast, deterministic bench settings for CLI-level tests.
FAST = ["bench", "--quick", "--kernels", "queue_churn",
        "--workloads", "none", "--repeats", "3"]


class TestBenchCommand:
    def test_json_report(self, capsys):
        assert main(FAST + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "rmrls-bench-report"
        assert "kernel_queue_churn_ns_per_op" in report["metrics"]

    def test_human_report(self, capsys):
        assert main(FAST) == 0
        captured = capsys.readouterr()
        assert "queue_churn" in captured.out
        assert "kernel queue_churn" in captured.err

    def test_output_and_append(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(FAST + ["--output", str(out),
                            "--append", str(tmp_path)]) == 0
        assert out.exists()
        trajectory = tmp_path / "BENCH_quick.json"
        document = json.loads(trajectory.read_text())
        assert document["schema"] == "rmrls-bench-trajectory"
        assert len(document["entries"]) == 1
        capsys.readouterr()

    def test_workload_name_flag(self, tmp_path, capsys):
        assert main(FAST + ["--workload-name", "smoke",
                            "--append", str(tmp_path)]) == 0
        assert (tmp_path / "BENCH_smoke.json").exists()
        capsys.readouterr()

    def test_compare_same_run_quiet(self, tmp_path, capsys):
        assert main(FAST + ["--append", str(tmp_path)]) == 0
        capsys.readouterr()
        trajectory = str(tmp_path / "BENCH_quick.json")
        # Re-running the same suite at the same commit must not trip
        # the gate (generous threshold absorbs timer noise).
        assert main(FAST + ["--compare", trajectory]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_missing_baseline_is_clean(self, tmp_path, capsys):
        assert main(
            FAST + ["--compare", str(tmp_path / "absent.json")]
        ) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        assert main(FAST + ["--append", str(tmp_path)]) == 0
        capsys.readouterr()
        trajectory = tmp_path / "BENCH_quick.json"
        document = json.loads(trajectory.read_text())
        # Shrink the recorded baseline so the fresh run looks 2x slower.
        for key, value in document["entries"][-1]["metrics"].items():
            if key.endswith("_ns_per_op"):
                document["entries"][-1]["metrics"][key] = value / 2.0
        trajectory.write_text(json.dumps(document))
        assert main(FAST + ["--compare", str(trajectory)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(FAST + ["--compare", str(trajectory),
                            "--warn-only"]) == 0
        capsys.readouterr()

    def test_compare_json_embeds_comparison(self, tmp_path, capsys):
        assert main(FAST + ["--append", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(FAST + ["--json", "--compare",
                            str(tmp_path / "BENCH_quick.json")]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["comparison"]["baseline_found"] is True

    def test_garbage_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("][")
        assert main(FAST + ["--compare", str(bad)]) == 2
        capsys.readouterr()

    def test_unknown_kernel_is_usage_error(self, capsys):
        assert main(["bench", "--kernels", "bogus"]) == 2
        assert "unknown kernel" in capsys.readouterr().err


class TestTraceSummarizeCommand:
    @pytest.fixture
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["synth", "--spec", "1,0,7,2,3,4,5,6",
                     "--trace-jsonl", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_text_summary(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "queue depth" in out
        assert "finish: solved" in out

    def test_json_summary(self, trace_path, capsys):
        assert main(["trace", "summarize", str(trace_path),
                     "--json", "--top", "3"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert len(summary["top_substitutions"]) <= 3
        assert summary["finish"]["reason"] == "solved"

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize",
                     str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_lines_skipped_not_fatal(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["trace", "summarize", str(path)]) == 0
        assert "skipped 1 malformed line" in capsys.readouterr().out
