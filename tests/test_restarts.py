"""Focused tests for the Sec. IV-E restart heuristic."""

from repro.functions.permutation import Permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class TestRestartMechanics:
    def test_restart_reseeds_alternative_first_level(self, rng):
        """With a tiny restart budget the search must cycle through
        first-level alternatives (recomputing released PPRMs) and still
        produce only verified circuits."""
        solved = 0
        for _ in range(10):
            images = list(range(16))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize(
                spec,
                SynthesisOptions(
                    greedy_k=1,
                    restart_steps=30,
                    max_steps=3_000,
                    max_gates=40,
                    dedupe_states=True,
                ),
            )
            if result.stats.restarts:
                # Restart bookkeeping is consistent.
                assert result.stats.restarts <= 64
            if result.solved:
                solved += 1
                assert result.verify(spec)
        # The point of restarts is rescuing some otherwise-stuck runs.
        assert solved >= 1

    def test_restarts_stop_after_solution(self, fig1_spec):
        result = synthesize(
            fig1_spec,
            SynthesisOptions(
                greedy_k=1, restart_steps=5, max_steps=5_000,
                dedupe_states=True,
            ),
        )
        assert result.solved
        # Once a solution exists, restarts never fire again; with the
        # trivial example the solution arrives within the first window.
        assert result.stats.restarts <= 2

    def test_max_restarts_cap(self):
        # An unsolvable configuration (gate cap below the optimum)
        # exhausts its restarts and terminates.
        spec = Permutation([0, 1, 2, 4, 3, 5, 6, 7])  # needs >= 5 gates
        result = synthesize(
            spec,
            SynthesisOptions(
                greedy_k=1,
                restart_steps=10,
                max_restarts=3,
                max_steps=50_000,
                max_gates=2,
                dedupe_states=True,
            ),
        )
        assert not result.solved
        assert result.stats.restarts <= 3

    def test_trace_records_restarts(self):
        spec = Permutation([0, 1, 2, 4, 3, 5, 6, 7])
        result = synthesize(
            spec,
            SynthesisOptions(
                greedy_k=1,
                restart_steps=5,
                max_restarts=2,
                max_steps=2_000,
                max_gates=3,
                dedupe_states=True,
                record_trace=True,
            ),
        )
        kinds = [event.kind for event in result.trace.events]
        if result.stats.restarts:
            assert "restart" in kinds
