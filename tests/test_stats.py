"""Tests for search statistics and trace recording."""

from repro.pprm.system import PPRMSystem
from repro.synth.node import SearchNode
from repro.synth.stats import SearchStats, TraceEvent, TraceRecorder


class TestSearchStats:
    def test_defaults(self):
        stats = SearchStats()
        assert stats.steps == 0
        assert not stats.timed_out
        assert not stats.step_limited

    def test_as_dict_round_trip(self):
        stats = SearchStats(steps=5, restarts=2, initial_terms=8)
        data = stats.as_dict()
        assert data["steps"] == 5
        assert data["restarts"] == 2
        assert data["initial_terms"] == 8
        assert set(data) >= {
            "nodes_created",
            "nodes_expanded",
            "peak_queue_size",
            "elapsed_seconds",
        }


class TestTraceRecorder:
    def _nodes(self):
        system = PPRMSystem.identity(2)
        root = SearchNode.root(system, node_id=0)
        child = SearchNode(
            parent=root,
            target=0,
            factor=0b10,
            pprm=system,
            terms=2,
            elim=1,
            priority=1.5,
            node_id=1,
        )
        return root, child

    def test_record_create(self):
        recorder = TraceRecorder()
        root, child = self._nodes()
        recorder.record("create", child, root)
        event = recorder.events[0]
        assert event.kind == "create"
        assert event.parent_id == 0
        assert event.substitution == "a = a + b"

    def test_render_all_kinds(self):
        recorder = TraceRecorder()
        root, child = self._nodes()
        recorder.record("pop", root)
        recorder.record("create", child, root)
        recorder.record("prune", child)
        recorder.record("solution", child, root)
        recorder.record("restart", child)
        text = recorder.render()
        assert "pop node 0" in text
        assert "create node 1" in text
        assert "prune node 1" in text
        assert "* solution at node 1" in text
        assert "restart from first-level node 1" in text

    def test_event_is_frozen(self):
        event = TraceEvent(
            kind="pop", node_id=0, parent_id=None, depth=0,
            substitution="(root)", terms=2, elim=0, priority=0.0,
        )
        import pytest

        with pytest.raises(Exception):
            event.kind = "create"
