"""The portfolio-parallel search engine (repro.parallel).

Covers the seed partitioner, the shared-bound protocol, the
first-level enumerator, the differential contract against the serial
search, byte-level determinism, fleet stats/metrics merging, and the
pool's early-cancellation path.

The differential and determinism tests run in the *deterministic
regime* (no ``stop_at_first``, no ``portfolio_cancel_gates``, no
step/time budgets that could bind mid-search) — see docs/parallel.md
for why cancellation deliberately trades determinism for latency.
"""

from __future__ import annotations

import random

import pytest

from repro.functions.permutation import Permutation
from repro.harness import WorkerBudget, WorkerPool, probe_task
from repro.io.real_format import dump_real
from repro.obs import MetricsObserver, MetricsRegistry
from repro.parallel import (
    LocalBound,
    SharedBound,
    partition_seeds,
    synthesize_portfolio,
)
from repro.synth import enumerate_first_level, synthesize
from repro.synth.options import SynthesisOptions
from repro.synth.stats import SearchStats

from conftest import random_spec


class TestPartitionSeeds:
    def test_round_robin_structure(self):
        assert partition_seeds(7, 3) == [(0, 3, 6), (1, 4), (2, 5)]

    def test_single_job_gets_everything(self):
        assert partition_seeds(5, 1) == [(0, 1, 2, 3, 4)]

    def test_disjoint_cover(self):
        slices = partition_seeds(23, 4)
        ranks = [rank for ranks in slices for rank in ranks]
        assert sorted(ranks) == list(range(23))

    def test_more_jobs_than_seeds_yields_wellformed_empty_slices(self):
        # Exactly ``jobs`` slices, always: surplus slots get empty
        # tuples (the deck builder drops them, the homogeneous driver
        # never materializes them as workers).
        assert partition_seeds(2, 8) == [
            (0,), (1,), (), (), (), (), (), (),
        ]
        assert partition_seeds(0, 4) == [(), (), (), ()]
        assert partition_seeds(0, 1) == [()]

    def test_slice_count_is_always_jobs(self):
        for num_seeds in range(6):
            for jobs in range(1, 6):
                assert len(partition_seeds(num_seeds, jobs)) == jobs

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_seeds(-1, 2)
        with pytest.raises(ValueError):
            partition_seeds(4, 0)


class TestBoundProtocol:
    @pytest.mark.parametrize("factory", [SharedBound, LocalBound])
    def test_publish_keeps_minimum(self, factory):
        bound = factory()
        assert bound.best() is None
        bound.publish(9)
        assert bound.best() == 9
        bound.publish(12)
        assert bound.best() == 9
        bound.publish(4)
        assert bound.best() == 4

    def test_search_adopts_published_bound_with_slack(self, fig1_spec):
        # A pre-published incumbent at the optimal depth must NOT prune
        # away equal-depth solutions: the search adopts best+1.
        baseline = synthesize(fig1_spec)
        assert baseline.solved
        bound = LocalBound()
        bound.publish(baseline.gate_count)
        bounded = synthesize(
            fig1_spec,
            SynthesisOptions().with_(bound_channel=bound),
        )
        assert bounded.solved
        assert bounded.gate_count == baseline.gate_count


class TestEnumerateFirstLevel:
    def test_fig1_seed_pool(self, fig1_spec):
        first = enumerate_first_level(fig1_spec)
        assert first.shortcut is None
        assert first.seeds
        priorities = [seed.priority for seed in first.seeds]
        assert priorities == sorted(priorities, reverse=True)
        assert [seed.rank for seed in first.seeds] == list(
            range(len(first.seeds))
        )

    def test_identity_shortcut(self):
        first = enumerate_first_level(Permutation([0, 1, 2, 3]))
        assert first.shortcut is not None
        assert first.shortcut.solved
        assert first.shortcut.gate_count == 0
        assert not first.seeds

    def test_single_gate_shortcut(self):
        # CCX: swap images 6 and 7 — solvable during root expansion,
        # and depth 1 is globally unbeatable.
        first = enumerate_first_level(Permutation([0, 1, 2, 3, 4, 5, 7, 6]))
        assert first.shortcut is not None
        assert first.shortcut.gate_count == 1
        assert not first.seeds


def _differential_specs(count: int):
    stream = random.Random(0xD1FF)
    return [random_spec(stream, 3) for _ in range(count)]


#: The deterministic differential regime: dedupe keeps exhaustion
#: tractable, and on 3-variable specs the step cap is far beyond what
#: exhaustion needs, so it never binds (a binding budget would break
#: the gate-count-equality contract — 4-variable specs *do* bind it,
#: which is why the 4-var test below asserts soundness instead).
_DIFF = dict(dedupe_states=True, max_steps=200_000)


def _assert_portfolio_matches_serial(spec, jobs=2):
    serial = synthesize(spec, **_DIFF)
    raced = synthesize(spec, portfolio_jobs=jobs, **_DIFF)
    assert raced.solved == serial.solved
    if serial.solved:
        assert raced.gate_count == serial.gate_count, (
            f"portfolio found {raced.gate_count} gates, serial "
            f"{serial.gate_count}, for {spec.images}"
        )
        assert raced.circuit.implements(spec)
    summary = raced.portfolio
    assert summary is not None
    assert summary.jobs == jobs


class TestDifferentialAgainstSerial:
    """Same solved set, same (optimal) depth, verified circuits."""

    def test_fig1(self, fig1_spec):
        _assert_portfolio_matches_serial(fig1_spec)

    @pytest.mark.parametrize("index", range(6))
    def test_random_3var_quick(self, index):
        _assert_portfolio_matches_serial(_differential_specs(6)[index])

    @pytest.mark.slow
    @pytest.mark.parametrize("index", range(40))
    def test_random_3var_sweep(self, index):
        _assert_portfolio_matches_serial(_differential_specs(40)[index])

    @pytest.mark.slow
    def test_four_jobs_on_4var(self):
        # 4-variable exhaustion is intractable, so any step cap binds
        # mid-search and gate-count equality with serial is no longer
        # part of the contract (docs/parallel.md).  What must still
        # hold under a binding budget is soundness: the fleet solves,
        # the winner verifies, and its metadata is self-consistent.
        stream = random.Random(0xD1FF + 4)
        budget = dict(dedupe_states=True, max_steps=20_000)
        for _ in range(3):
            spec = random_spec(stream, 4)
            raced = synthesize(spec, portfolio_jobs=4, **budget)
            assert raced.solved
            assert raced.circuit.implements(spec)
            summary = raced.portfolio
            assert summary.jobs == 4
            winner = [
                entry for entry in summary.slices
                if entry.slice_index == summary.winner_slice
            ]
            assert len(winner) == 1
            assert winner[0].gate_count == raced.gate_count


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, fig1_spec):
        first = synthesize(fig1_spec, portfolio_jobs=2)
        second = synthesize(fig1_spec, portfolio_jobs=2)
        assert first.solved and second.solved
        assert dump_real(first.circuit) == dump_real(second.circuit)
        assert (
            first.stats.finish_reason == second.stats.finish_reason
        )
        assert (
            first.portfolio.winner_slice == second.portfolio.winner_slice
        )
        assert first.portfolio.winner_rank == second.portfolio.winner_rank

    def test_winner_matches_serial_restart_order(self, fig1_spec):
        # The deterministic winner is picked by (depth, seed rank,
        # slice), so reported metadata must be internally consistent.
        result = synthesize(fig1_spec, portfolio_jobs=2)
        summary = result.portfolio
        winner = [
            entry for entry in summary.slices
            if entry.slice_index == summary.winner_slice
        ]
        assert len(winner) == 1
        assert winner[0].gate_count == result.gate_count
        assert winner[0].solution_rank == summary.winner_rank


class TestFleetMerging:
    def test_stats_merge_sums_counters(self):
        left = SearchStats(steps=3, nodes_created=5, restarts=1,
                           peak_queue_size=7, initial_terms=9,
                           hot_ops={"queue_pushes": 2})
        right = SearchStats(steps=4, nodes_created=6, restarts=0,
                            peak_queue_size=3, timed_out=True,
                            hot_ops={"queue_pushes": 5, "queue_pops": 1})
        left.merge(right)
        assert left.steps == 7
        assert left.nodes_created == 11
        assert left.peak_queue_size == 7
        assert left.initial_terms == 9
        assert left.timed_out
        assert left.hot_ops == {"queue_pushes": 7, "queue_pops": 1}

    def test_stats_from_dict_ignores_unknown_keys(self):
        stats = SearchStats.from_dict(
            {"steps": 11, "finish_reason": "solved", "not_a_field": 1}
        )
        assert stats.steps == 11
        assert stats.finish_reason == "solved"

    def test_fleet_stats_are_slice_totals(self, fig1_spec):
        result = synthesize(fig1_spec, portfolio_jobs=2)
        reported = sum(
            entry.steps for entry in result.portfolio.slices
        )
        assert result.stats.steps == reported
        assert result.stats.steps > 0
        assert result.stats.hot_ops.get("queue_pushes", 0) > 0

    def test_worker_metrics_merge_into_parent_registry(self, fig1_spec):
        registry = MetricsRegistry()
        options = SynthesisOptions(
            observers=(MetricsObserver(registry),), portfolio_jobs=2
        )
        result = synthesize(fig1_spec, options)
        assert result.solved
        snapshot = registry.as_dict()
        merged_steps = (snapshot.get("search_steps") or {}).get("value", 0)
        assert merged_steps == sum(
            entry.steps for entry in result.portfolio.slices
        )
        assert merged_steps > 0


class TestServingDegenerateFleets:
    def test_jobs_1_is_serial_with_summary(self, fig1_spec):
        result = synthesize_portfolio(fig1_spec, jobs=1)
        assert result.solved
        assert result.portfolio is not None
        assert result.portfolio.jobs == 1
        assert not result.portfolio.slices

    def test_identity_shortcut_through_portfolio(self):
        result = synthesize(Permutation([0, 1, 2, 3]), portfolio_jobs=4)
        assert result.solved
        assert result.gate_count == 0
        assert result.portfolio.shortcut

    def test_worker_options_never_recurse(self, fig1_spec):
        # A worker's options carry portfolio_seed_ranks, which must
        # suppress the portfolio dispatch even with portfolio_jobs
        # still set — otherwise every worker would fork its own fleet.
        result = synthesize(
            fig1_spec,
            portfolio_jobs=2,
            portfolio_seed_ranks=(0, 1),
            **_DIFF,
        )
        assert result.portfolio is None
        assert result.solved


class TestEarlyCancellation:
    @pytest.mark.flaky_guard
    def test_stop_check_kills_running_workers(self):
        state = {"stop": False}

        def on_final(task, outcome):
            if outcome.status == "ok":
                state["stop"] = True

        pool = WorkerPool(jobs=2, budget=WorkerBudget())
        outcomes = pool.run(
            [
                probe_task("ok", meta={"label": "fast"}),
                probe_task("hang", seconds=60, meta={"label": "stuck"}),
            ],
            on_final=on_final,
            stop_check=lambda: state["stop"],
        )
        by_label = {o.meta["label"]: o for o in outcomes}
        assert by_label["fast"].status == "ok"
        assert by_label["stuck"].status == "interrupted"
        assert "cancelled" in by_label["stuck"].error

    def test_stop_check_drains_pending_tasks(self):
        state = {"stop": False}

        def on_final(task, outcome):
            state["stop"] = True

        pool = WorkerPool(jobs=1, budget=WorkerBudget())
        outcomes = pool.run(
            [
                probe_task("ok", meta={"label": "first"}),
                probe_task("ok", meta={"label": "second"}),
            ],
            on_final=on_final,
            stop_check=lambda: state["stop"],
        )
        by_label = {o.meta["label"]: o for o in outcomes}
        assert by_label["first"].status == "ok"
        assert by_label["second"].status == "interrupted"
        assert "before launch" in by_label["second"].error

    def test_portfolio_cancellation_still_verifies(self, fig1_spec):
        # Cancellation trades determinism for latency, but never
        # soundness: whatever wins must verify.
        result = synthesize(
            fig1_spec, portfolio_jobs=2, stop_at_first=True
        )
        assert result.solved
        assert result.circuit.implements(fig1_spec)
        # Slices either solve, get cancelled, or exhaust their own
        # restricted queue before the kill lands — all legitimate.
        for entry in result.portfolio.slices:
            assert entry.status in ("ok", "interrupted", "unsolved")
