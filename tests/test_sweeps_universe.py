"""Spec universes: permutation ranking and canonical-class enumeration."""

import itertools

import pytest

from repro.store.canonical import canonicalize
from repro.sweeps import (
    UNIVERSES,
    enumerate_classes,
    get_universe,
    perm_rank,
    perm_unrank,
)


class TestLehmerRanking:
    def test_identity_ranks_zero(self):
        assert perm_rank(range(8)) == 0

    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_rank_is_lexicographic_position(self, size):
        for rank, images in enumerate(
            itertools.permutations(range(size))
        ):
            assert perm_rank(images) == rank
            assert perm_unrank(rank, size) == images

    def test_round_trip_spot_checks_size8(self, rng):
        for _ in range(50):
            rank = rng.randrange(40320)
            assert perm_rank(perm_unrank(rank, 8)) == rank

    def test_unrank_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            perm_unrank(24, 4)
        with pytest.raises(ValueError):
            perm_unrank(-1, 4)


class TestClassEnumeration:
    def test_perm2_has_14_classes_covering_24_functions(self):
        classes = enumerate_classes(2)
        assert len(classes) == 14
        assert sum(cls.class_size for cls in classes) == 24

    def test_perm3_has_6828_classes_covering_40320_functions(self):
        classes = enumerate_classes(3)
        assert len(classes) == 6828
        assert sum(cls.class_size for cls in classes) == 40320

    def test_ranks_are_dense_and_reps_lex_sorted(self):
        classes = enumerate_classes(2)
        assert [cls.class_rank for cls in classes] == list(range(14))
        reps = [cls.images for cls in classes]
        assert reps == sorted(reps)

    def test_representatives_have_distinct_canonical_keys(self):
        keys = {
            canonicalize(list(cls.images)).key
            for cls in enumerate_classes(2)
        }
        assert len(keys) == 14

    def test_perm_rank_matches_representative(self):
        for cls in enumerate_classes(2):
            assert perm_rank(cls.images) == cls.perm_rank

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError, match="1..3"):
            enumerate_classes(4)


class TestUniverseRegistry:
    def test_perm3_is_the_table1_universe(self):
        universe = get_universe("perm3")
        assert universe.size == 6828
        assert universe.function_count == 40320

    def test_slice_and_item(self):
        universe = get_universe("perm2")
        assert universe.item(0).class_rank == 0
        assert len(universe.slice(3, 9)) == 6
        with pytest.raises(ValueError):
            universe.item(universe.size)
        with pytest.raises(ValueError):
            universe.slice(0, universe.size + 1)

    def test_unknown_universe_rejected(self):
        with pytest.raises(ValueError, match="unknown universe"):
            get_universe("perm9")

    def test_registry_names_are_self_consistent(self):
        for name, universe in UNIVERSES.items():
            assert universe.name == name
