"""Micro-benchmark timing: MAD outlier rejection and time_callable."""

import pytest

from repro.perf.timing import TimingResult, mad_keep_mask, time_callable


class TestMadKeepMask:
    def test_fewer_than_three_kept(self):
        assert mad_keep_mask([]) == []
        assert mad_keep_mask([1.0]) == [True]
        assert mad_keep_mask([1.0, 99.0]) == [True, True]

    def test_identical_samples_kept(self):
        assert mad_keep_mask([2.0] * 7) == [True] * 7

    def test_slow_outlier_rejected(self):
        mask = mad_keep_mask([1.0, 1.01, 0.99, 1.02, 5.0])
        assert mask == [True, True, True, True, False]

    def test_fast_outlier_kept(self):
        # One-sided: an anomalously fast sample is physically
        # meaningful and must survive.
        mask = mad_keep_mask([1.0, 1.01, 0.99, 1.02, 0.2])
        assert mask[-1] is True

    def test_zero_mad_falls_back_to_mean_deviation(self):
        # Majority identical (MAD = 0) plus one slow spike: the mean
        # absolute deviation fallback still catches it.
        mask = mad_keep_mask([1.0] * 6 + [50.0])
        assert mask == [True] * 6 + [False]

    def test_moderate_spread_kept(self):
        assert mad_keep_mask([0.5, 1.0, 1.5]) == [True] * 3


class TestTimeCallable:
    def test_runs_warmup_plus_repeats(self):
        calls = []
        result = time_callable(
            "k", lambda: calls.append(1), ops=2, repeats=4, warmup=3
        )
        assert len(calls) == 7
        assert len(result.samples) == 4
        assert result.warmup == 3
        assert result.ops == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            time_callable("k", lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable("k", lambda: None, ops=0)

    def test_deterministic_clock(self):
        ticks = iter(range(100))
        result = time_callable(
            "k", lambda: None, ops=10, repeats=3, warmup=0,
            clock=lambda: next(ticks),
        )
        # every sample is exactly one tick = 1 second
        assert result.samples == [1, 1, 1]
        assert result.median_seconds == 1
        assert result.ns_per_op == pytest.approx(1e8)
        assert result.ops_per_s == pytest.approx(10.0)


class TestTimingResult:
    def test_summary_over_kept_samples_only(self):
        result = TimingResult(
            name="k",
            ops=1,
            samples=[1.0, 2.0, 100.0],
            kept=[True, True, False],
        )
        assert result.rejected == 1
        assert result.kept_samples == [1.0, 2.0]
        assert result.median_seconds == 1.5
        assert result.min_seconds == 1.0
        assert result.mean_seconds == 1.5

    def test_as_dict_roundtrip(self):
        result = time_callable("k", lambda: None, ops=3, repeats=3)
        data = result.as_dict()
        assert data["name"] == "k"
        assert data["repeats"] == 3
        assert data["ns_per_op"] == pytest.approx(result.ns_per_op)
        assert len(data["samples_seconds"]) == 3
