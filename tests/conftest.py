"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.functions.permutation import Permutation


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global state."""
    return random.Random(0xDA7E2004)


@pytest.fixture
def fig1_spec() -> Permutation:
    """The paper's running example (Fig. 1)."""
    return Permutation([1, 0, 7, 2, 3, 4, 5, 6])


def random_spec(rng: random.Random, num_vars: int) -> Permutation:
    """Draw one uniformly random reversible function."""
    images = list(range(1 << num_vars))
    rng.shuffle(images)
    return Permutation(images)
