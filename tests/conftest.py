"""Shared fixtures for the test suite, plus two suite-wide policies:

* ``slow`` — long sweeps (exhaustive differentials, big samples) are
  collected but skipped unless ``RMRLS_SLOW=1`` is exported;
* ``flaky_guard`` — tests coupled to real time (subprocess wall
  budgets, kill latencies) are rerun on failure instead of failing the
  suite outright, and every rerun is reported in the terminal summary
  so flakiness stays visible instead of silently retried away.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.functions.permutation import Permutation


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global state."""
    return random.Random(0xDA7E2004)


@pytest.fixture
def fig1_spec() -> Permutation:
    """The paper's running example (Fig. 1)."""
    return Permutation([1, 0, 7, 2, 3, 4, 5, 6])


def random_spec(rng: random.Random, num_vars: int) -> Permutation:
    """Draw one uniformly random reversible function."""
    images = list(range(1 << num_vars))
    rng.shuffle(images)
    return Permutation(images)


# -- slow-test gating --------------------------------------------------------


def pytest_collection_modifyitems(config, items):
    if os.environ.get("RMRLS_SLOW"):
        return
    skip = pytest.mark.skip(reason="slow sweep; set RMRLS_SLOW=1 to run")
    for item in items:
        if item.get_closest_marker("slow") is not None:
            item.add_marker(skip)


# -- flaky_guard: rerun-and-report for real-time-coupled tests ---------------

#: (nodeid, reruns_used, recovered) per flaky_guard test that failed at
#: least once.
_FLAKY_RERUNS: list[tuple[str, int, bool]] = []

#: Extra attempts granted to a flaky_guard test after its first failure.
_FLAKY_MAX_RERUNS = 2


def pytest_runtest_protocol(item, nextitem):
    marker = item.get_closest_marker("flaky_guard")
    if marker is None:
        return None
    from _pytest.runner import runtestprotocol

    reruns = int(marker.kwargs.get("reruns", _FLAKY_MAX_RERUNS))
    item.ihook.pytest_runtest_logstart(
        nodeid=item.nodeid, location=item.location
    )
    for attempt in range(reruns + 1):
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        failed = any(
            report.failed and not hasattr(report, "wasxfail")
            for report in reports
        )
        if not failed or attempt == reruns:
            if attempt:
                _FLAKY_RERUNS.append((item.nodeid, attempt, not failed))
            for report in reports:
                item.ihook.pytest_runtest_logreport(report=report)
            break
        # Reset fixtures so the retry starts clean (same mechanism
        # pytest-rerunfailures uses; absent only on non-Function items,
        # which cannot carry this marker anyway).
        if hasattr(item, "_initrequest"):
            item._initrequest()
    item.ihook.pytest_runtest_logfinish(
        nodeid=item.nodeid, location=item.location
    )
    return True


def pytest_terminal_summary(terminalreporter):
    if not _FLAKY_RERUNS:
        return
    terminalreporter.section("flaky_guard reruns")
    for nodeid, reruns, recovered in _FLAKY_RERUNS:
        verdict = (
            f"passed after {reruns} rerun(s)"
            if recovered
            else f"still failing after {reruns} rerun(s)"
        )
        terminalreporter.line(f"{nodeid}: {verdict}")
