"""Tests for repro.gates.fredkin."""

import pytest

from repro.gates.fredkin import FredkinGate, swap


class TestConstruction:
    def test_swap(self):
        gate = swap(0, 2)
        assert gate.is_swap()
        assert gate.size == 2
        assert str(gate) == "SWAP(a, c)"

    def test_controlled(self):
        gate = FredkinGate(0b100, 0, 1)
        assert not gate.is_swap()
        assert gate.size == 3
        assert str(gate) == "FRE3(c, a, b)"

    def test_targets_sorted(self):
        assert FredkinGate(0, 3, 1).targets == (1, 3)

    def test_same_targets_rejected(self):
        with pytest.raises(ValueError):
            FredkinGate(0, 1, 1)

    def test_control_overlapping_target_rejected(self):
        with pytest.raises(ValueError):
            FredkinGate(0b001, 0, 1)

    def test_from_names(self):
        gate = FredkinGate.from_names("c", "a", "b")
        assert gate.controls == 0b100
        assert gate.targets == (0, 1)

    def test_from_names_too_few(self):
        with pytest.raises(ValueError):
            FredkinGate.from_names("a")


class TestSemantics:
    def test_swap_exchanges(self):
        gate = swap(0, 1)
        assert gate.apply(0b01) == 0b10
        assert gate.apply(0b10) == 0b01
        assert gate.apply(0b11) == 0b11
        assert gate.apply(0b00) == 0b00

    def test_controlled_swap_gated(self):
        gate = FredkinGate(0b100, 0, 1)
        assert gate.apply(0b001) == 0b001  # control off
        assert gate.apply(0b101) == 0b110  # control on

    def test_involution(self):
        gate = FredkinGate(0b1000, 0, 2)
        for assignment in range(16):
            assert gate.apply(gate.apply(assignment)) == assignment
        assert gate.inverse() is gate

    def test_fredkin_spec_matches_paper_example3(self):
        """Example 3: the Fredkin gate is {0,1,2,3,4,6,5,7}."""
        gate = FredkinGate(0b100, 0, 1)
        images = [gate.apply(m) for m in range(8)]
        assert images == [0, 1, 2, 3, 4, 6, 5, 7]


class TestToffoliExpansion:
    def test_three_gate_expansion(self):
        gate = FredkinGate(0b100, 0, 1)
        cascade = gate.to_toffoli()
        assert len(cascade) == 3

    def test_expansion_equivalent(self):
        for controls, a, b in [(0, 0, 1), (0b100, 0, 1), (0b1100, 0, 1)]:
            gate = FredkinGate(controls, a, b)
            cascade = gate.to_toffoli()
            for assignment in range(16):
                value = assignment
                for toffoli in cascade:
                    value = toffoli.apply(value)
                assert value == gate.apply(assignment)

    def test_min_lines(self):
        assert swap(0, 1).min_lines() == 2
        assert FredkinGate(0b1000, 0, 1).min_lines() == 4

    def test_hash_equality(self):
        assert len({swap(0, 1), swap(1, 0)}) == 1
        assert swap(0, 1) != swap(0, 2)
