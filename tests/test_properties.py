"""Cross-module property-based tests (hypothesis).

Each property ties two independent implementations of the same concept
together — simulation vs algebra, synthesis vs verification, writers vs
parsers — so a bug in either side breaks the test.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transformation import transformation_synthesize
from repro.circuits.circuit import Circuit
from repro.circuits.decompose import decompose_circuit
from repro.circuits.random_circuits import random_circuit
from repro.circuits.verify import equivalent, symbolic_pprm
from repro.functions.permutation import Permutation
from repro.functions.truth_table import TruthTable
from repro.gates.library import GT, NCT
from repro.io.pla import dump_pla, load_pla_table
from repro.io.real_format import dump_real, load_real
from repro.postprocess.fredkin_extract import extract_fredkin
from repro.postprocess.templates import simplify
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

perm8 = st.permutations(list(range(8)))
seeds = st.integers(0, 10_000)


def _random_circuit(seed: int, num_lines: int = 4, max_gates: int = 10,
                    library=GT) -> Circuit:
    rng = random.Random(seed)
    return random_circuit(num_lines, rng.randint(0, max_gates), rng, library)


class TestSynthesisProperties:
    @settings(max_examples=20, deadline=None)
    @given(perm8)
    def test_rmrls_and_transformation_agree(self, images):
        """Two completely different synthesizers realize the same
        function."""
        spec = Permutation(images)
        ours = synthesize(
            spec, SynthesisOptions(dedupe_states=True, max_steps=15_000)
        )
        theirs = transformation_synthesize(spec)
        assert ours.solved
        assert equivalent(ours.circuit, theirs)

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_synthesis_of_circuit_specs(self, seed):
        """Round trip: circuit -> PPRM -> synthesis -> same function."""
        original = _random_circuit(seed)
        result = synthesize(
            original.to_pprm(),
            SynthesisOptions(
                dedupe_states=True, max_steps=10_000, greedy_k=3,
                restart_steps=2_000, max_gates=40,
            ),
        )
        if result.solved:
            assert equivalent(result.circuit, original)


class TestAlgebraVsSimulation:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_symbolic_pprm_matches_simulation(self, seed):
        circuit = _random_circuit(seed)
        assert symbolic_pprm(circuit).to_images() == list(
            circuit.to_permutation().images
        )

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_inverse_circuit_composes_to_identity(self, seed):
        circuit = _random_circuit(seed)
        assert circuit.then(circuit.inverse()).to_permutation().is_identity()


class TestRewriteSoundness:
    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_simplify_preserves_function(self, seed):
        circuit = _random_circuit(seed)
        reduced = simplify(circuit)
        assert reduced.gate_count() <= circuit.gate_count()
        assert equivalent(reduced, circuit)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_fredkin_extraction_preserves_function(self, seed):
        circuit = _random_circuit(seed)
        extracted = extract_fredkin(circuit)
        assert extracted.gate_count() <= circuit.gate_count()
        assert extracted.to_permutation() == circuit.to_permutation()

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_decomposition_preserves_function(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(6, rng.randint(0, 6), rng, GT)
        has_room = all(
            gate.size <= 3 or gate.size < circuit.num_lines
            for gate in circuit.gates
        )
        if not has_room:
            return
        nct = decompose_circuit(circuit)
        assert nct.max_gate_size() <= 3
        assert equivalent(nct, circuit)


class TestInterchangeRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_real_round_trip(self, seed):
        circuit = _random_circuit(seed, num_lines=5)
        assert load_real(dump_real(circuit)) == circuit

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 7), min_size=8, max_size=8))
    def test_pla_round_trip(self, rows):
        table = TruthTable(3, 3, rows)
        assert load_pla_table(dump_pla(table)) == table

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_real_preserves_semantics(self, seed):
        circuit = _random_circuit(seed, library=NCT)
        parsed = load_real(dump_real(circuit))
        assert parsed.to_permutation() == circuit.to_permutation()
