"""Tests for symbolic PPRM construction of wide benchmarks."""

import pytest

from repro.benchlib.generators import controlled_shifter, graycode
from repro.benchlib.specs import benchmark
from repro.benchlib.symbolic import (
    controlled_shifter_system,
    graycode_system,
    system_agrees_with_circuit,
)
from repro.circuits.circuit import Circuit
from repro.gates.toffoli import ToffoliGate


class TestGraycodeSystem:
    @pytest.mark.parametrize("num_vars", [1, 2, 3, 6])
    def test_matches_numeric(self, num_vars):
        symbolic = graycode_system(num_vars)
        numeric = graycode(num_vars).to_pprm()
        assert symbolic == numeric

    def test_term_count_linear(self):
        system = graycode_system(20)
        assert system.term_count() == 2 * 20 - 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            graycode_system(0)


class TestShifterSystem:
    @pytest.mark.parametrize("data_vars", [1, 2, 3, 4, 5])
    def test_matches_numeric(self, data_vars):
        symbolic = controlled_shifter_system(data_vars)
        numeric = controlled_shifter(data_vars).to_pprm()
        assert symbolic == numeric

    def test_shift28_is_compact(self):
        system = controlled_shifter_system(28)
        assert system.num_vars == 30
        # ~4 terms per data output.
        assert system.term_count() < 4 * 30

    def test_invalid(self):
        with pytest.raises(ValueError):
            controlled_shifter_system(0)


class TestAgreementCheck:
    def test_exhaustive_small(self):
        system = graycode_system(3)
        gates = [ToffoliGate(0b010, 0), ToffoliGate(0b100, 1)]
        circuit = Circuit(3, gates)
        assert system_agrees_with_circuit(system, circuit)

    def test_detects_mismatch(self):
        system = graycode_system(3)
        assert not system_agrees_with_circuit(system, Circuit.identity(3))

    def test_width_mismatch(self):
        assert not system_agrees_with_circuit(
            graycode_system(3), Circuit.identity(4)
        )

    def test_sampled_wide(self):
        # 20 lines: exhaustive impossible; sampled check must accept the
        # true circuit and reject a wrong one.
        system = graycode_system(20)
        gates = [ToffoliGate(1 << (i + 1), i) for i in range(19)]
        good = Circuit(20, gates)
        assert system_agrees_with_circuit(system, good, samples=500)
        assert not system_agrees_with_circuit(
            system, Circuit.identity(20), samples=500
        )


class TestSpecIntegration:
    def test_shift28_spec_uses_symbolic_system(self):
        spec = benchmark("shift28")
        assert spec.permutation is None
        assert spec.num_lines == 30
        assert spec.pprm().num_vars == 30

    def test_graycode20_verify_path(self):
        spec = benchmark("graycode20")
        gates = [ToffoliGate(1 << (i + 1), i) for i in range(19)]
        assert spec.verify(Circuit(20, gates))
        assert not spec.verify(Circuit.identity(20))
