"""Canonical cache keys modulo wire relabeling (repro.store.canonical).

The contract under test: two specifications share a key exactly when
one is a wire relabeling of the other, the recorded witness relabeling
replays a canonical-order circuit bit-exactly onto the caller's wire
order, and the key is derived from the engine's shared packed wire
format so it is identical across PPRM backends.
"""

import itertools

import pytest

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.gates.toffoli import ToffoliGate
from repro.store import CanonicalizationError, canonicalize, relabel_circuit
from repro.store.canonical import RELABEL_ENV_VAR, bit_permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize

QUICK = SynthesisOptions(dedupe_states=True, max_steps=40_000)


def conjugate(images, pi):
    """sigma_pi o P o sigma_pi^{-1} — the action of relabeling wires."""
    sigma = bit_permutation(pi)
    out = [0] * len(images)
    for x, image in enumerate(images):
        out[sigma[x]] = sigma[image]
    return out


def random_circuit(rng, num_lines=3, max_gates=6) -> Circuit:
    gates = []
    for _ in range(rng.randint(1, max_gates)):
        target = rng.randrange(num_lines)
        controls = rng.randrange(1 << num_lines) & ~(1 << target)
        gates.append(ToffoliGate(controls, target))
    return Circuit(num_lines, gates)


class TestKeyInvariance:
    def test_every_relabeling_shares_the_key(self, fig1_spec):
        base = canonicalize(fig1_spec)
        for pi in itertools.permutations(range(3)):
            spec = conjugate(fig1_spec.images, pi)
            other = canonicalize(spec)
            assert other.key == base.key
            assert other.images == base.images  # same representative

    def test_distinct_functions_get_distinct_keys(self, fig1_spec):
        identity = canonicalize(list(range(8)))
        assert canonicalize(fig1_spec).key != identity.key

    def test_key_is_relabeling_blind_not_function_blind(self, rng):
        seen = set()
        for _ in range(20):
            images = list(range(8))
            rng.shuffle(images)
            seen.add(canonicalize(images).key)
        assert len(seen) > 1

    def test_spec_forms_agree(self, fig1_spec):
        from_perm = canonicalize(fig1_spec)
        from_raw = canonicalize(list(fig1_spec.images))
        from_pprm = canonicalize(fig1_spec.to_pprm())
        assert from_perm.key == from_raw.key == from_pprm.key

    def test_circuit_spec_is_simulated_first(self, rng):
        circuit = random_circuit(rng)
        assert (
            canonicalize(circuit).key
            == canonicalize(circuit.to_permutation()).key
        )

    def test_key_stable_across_engines(self, fig1_spec, monkeypatch):
        monkeypatch.setenv("RMRLS_ENGINE", "reference")
        reference = canonicalize(Permutation(list(fig1_spec.images))).key
        monkeypatch.setenv("RMRLS_ENGINE", "packed")
        packed = canonicalize(Permutation(list(fig1_spec.images))).key
        assert reference == packed


class TestWitnessReplay:
    def test_round_trip_is_exact(self, rng):
        for _ in range(10):
            circuit = random_circuit(rng)
            canonical = canonicalize(circuit.to_permutation())
            stored = canonical.to_canonical(circuit)
            replayed = canonical.from_canonical(stored)
            assert replayed.gates == circuit.gates

    def test_canonical_form_implements_the_representative(self, rng):
        for _ in range(10):
            circuit = random_circuit(rng)
            canonical = canonicalize(circuit.to_permutation())
            stored = canonical.to_canonical(circuit)
            assert stored.implements(canonical.canonical_permutation())

    def test_synthesized_representative_replays_onto_caller(self, rng):
        # The cache-miss path: synthesize the canonical representative
        # once, replay it for a differently-labeled requester.
        images = list(range(8))
        rng.shuffle(images)
        canonical = canonicalize(images)
        result = synthesize(canonical.canonical_permutation().to_pprm(),
                            QUICK)
        assert result.circuit is not None
        replayed = canonical.from_canonical(result.circuit)
        assert replayed.implements(Permutation(images))

    def test_relabel_circuit_conjugates(self, rng):
        circuit = random_circuit(rng)
        for pi in itertools.permutations(range(3)):
            relabeled = relabel_circuit(circuit, pi)
            expected = conjugate(circuit.to_permutation().images, pi)
            assert list(relabeled.to_permutation().images) == expected

    def test_relabel_circuit_rejects_width_mismatch(self, rng):
        with pytest.raises(ValueError, match="lines"):
            relabel_circuit(random_circuit(rng), (0, 1))


class TestCapAndErrors:
    def test_above_cap_falls_back_to_identity(self, fig1_spec):
        capped = canonicalize(fig1_spec, relabel_max_vars=2)
        assert not capped.exhaustive
        assert capped.relabel == (0, 1, 2)
        assert capped.images == tuple(fig1_spec.images)

    def test_identity_fallback_is_sound_but_finer(self, fig1_spec):
        # Above the cap relabelings of the same function may key apart
        # (finer equivalence) but the same function never keys apart.
        capped = canonicalize(fig1_spec, relabel_max_vars=2)
        again = canonicalize(list(fig1_spec.images), relabel_max_vars=2)
        assert capped.key == again.key

    def test_env_var_overrides_cap(self, fig1_spec, monkeypatch):
        monkeypatch.setenv(RELABEL_ENV_VAR, "2")
        assert not canonicalize(fig1_spec).exhaustive
        monkeypatch.setenv(RELABEL_ENV_VAR, "6")
        assert canonicalize(fig1_spec).exhaustive

    def test_bad_env_var_raises(self, fig1_spec, monkeypatch):
        monkeypatch.setenv(RELABEL_ENV_VAR, "many")
        with pytest.raises(CanonicalizationError, match="not an integer"):
            canonicalize(fig1_spec)

    def test_as_dict_is_json_safe(self, fig1_spec):
        import json

        document = canonicalize(fig1_spec).as_dict()
        assert json.loads(json.dumps(document)) == document
