"""Shard execution: per-shard ledgers, adoption, resume, progress."""

import json
import os

from repro.harness import HarnessConfig
from repro.obs import MetricsRegistry, derive_shard_metrics
from repro.sweeps import (
    build_manifest,
    run_shard,
    shard_ledger_path,
    shard_summary_path,
)


def _run_all(manifest, out_dir, **kwargs):
    return [
        run_shard(manifest, index, out_dir, **kwargs)
        for index in range(manifest.shard_count)
    ]


class TestRunShard:
    def test_shard_runs_its_slice_and_writes_sidecars(self, tmp_path):
        manifest = build_manifest("perm2", shards=2)
        out = str(tmp_path / "shards")
        summary = run_shard(manifest, 0, out)
        assert summary["report"]["counts"]["ok"] == 7
        assert summary["manifest_fingerprint"] == manifest.fingerprint
        assert summary["shard"] == manifest.shard(0).as_dict()
        assert os.path.exists(shard_ledger_path(out, manifest, 0))
        sidecar = json.load(open(shard_summary_path(out, manifest, 0)))
        assert sidecar["solved"] == 7

    def test_rerun_replays_from_own_ledger(self, tmp_path):
        manifest = build_manifest("perm2", shards=2)
        out = str(tmp_path / "shards")
        run_shard(manifest, 1, out)
        again = run_shard(manifest, 1, out)
        assert again["report"]["replayed"] == 7
        assert again["report"]["counts"]["ok"] == 7

    def test_limit_interrupts_then_resume_completes(self, tmp_path):
        manifest = build_manifest("perm2", shards=1)
        out = str(tmp_path / "shards")
        partial = run_shard(manifest, 0, out, limit=5)
        assert partial["report"]["interrupted"]
        assert partial["report"]["completed"] == 5
        finished = run_shard(manifest, 0, out)
        assert finished["report"]["replayed"] == 5
        assert finished["report"]["counts"]["ok"] == 14

    def test_progress_gauges_are_labelled_per_shard(self, tmp_path):
        registry = MetricsRegistry()
        manifest = build_manifest("perm2", shards=2)
        out = str(tmp_path / "shards")
        run_shard(
            manifest, 1, out, harness=HarnessConfig(metrics=registry)
        )
        label = {"shard": "2/2"}
        assert registry.gauge("shard_items", label).value == 7
        assert registry.gauge("shard_done", label).value == 7
        assert registry.gauge(
            "shard_progress_percent", label
        ).value == 100.0


class TestAdoption:
    def test_adopts_across_shard_layouts_without_rerunning(self, tmp_path):
        four = build_manifest("perm2", shards=4)
        out4 = str(tmp_path / "four")
        _run_all(four, out4)
        ledgers = [
            shard_ledger_path(out4, four, index) for index in range(4)
        ]
        # Re-plan the same universe as 2 shards: every outcome adopts.
        two = build_manifest("perm2", shards=2)
        out2 = str(tmp_path / "two")
        for index, summary in enumerate(
            _run_all(two, out2, adopt=ledgers)
        ):
            items = two.shard(index).items
            assert summary["adopted"] == items
            assert summary["report"]["replayed"] == items

    def test_adoption_ignores_foreign_and_unreadable_sources(
        self, tmp_path
    ):
        manifest = build_manifest("perm2", shards=1)
        other = build_manifest("perm2", shards=1, engine="packed")
        out_other = str(tmp_path / "other")
        _run_all(other, out_other)
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not a ledger\n")
        summary = run_shard(
            manifest, 0, str(tmp_path / "mine"),
            # Different engine -> different task ids -> nothing matches;
            # the unreadable file is skipped, not fatal.
            adopt=[shard_ledger_path(out_other, other, 0), str(bogus)],
        )
        assert summary["adopted"] == 0
        assert summary["report"]["counts"]["ok"] == 14

    def test_adoption_is_idempotent(self, tmp_path):
        manifest = build_manifest("perm2", shards=1)
        out = str(tmp_path / "a")
        _run_all(manifest, out)
        ledger = shard_ledger_path(out, manifest, 0)
        out_b = str(tmp_path / "b")
        first = run_shard(manifest, 0, out_b, adopt=[ledger])
        assert first["adopted"] == 14
        second = run_shard(manifest, 0, out_b, adopt=[ledger])
        assert second["adopted"] == 0
        assert second["report"]["replayed"] == 14


class TestShardFleetMetrics:
    def test_derives_straggler_ratio_from_summaries(self, tmp_path):
        manifest = build_manifest("perm2", shards=2)
        out = str(tmp_path / "shards")
        summaries = _run_all(manifest, out)
        registry = MetricsRegistry()
        derived = derive_shard_metrics(summaries, registry)
        assert set(derived["shards"]) == {"1", "2"}
        assert derived["failed_shards"] == 0
        assert registry.gauge("sweep_shards_total").value == 2
        for label, shard in derived["shards"].items():
            assert shard["solved"] == shard["items"]
            gauge = registry.gauge(
                "sweep_shard_solved", {"shard": label}
            )
            assert gauge.value == shard["solved"]
        ratio = derived["straggler_ratio"]
        if ratio is not None:  # zero-elapsed shards on a fast machine
            assert ratio >= 1.0
            assert registry.gauge(
                "sweep_shard_straggler_ratio"
            ).value == ratio

    def test_counts_failed_shards(self):
        summaries = [
            {
                "shard": {"index": 0, "start": 0, "stop": 5},
                "solved": 4,
                "report": {
                    "counts": {"ok": 4, "timeout": 1},
                    "elapsed_seconds": 2.0,
                },
            },
            {
                "shard": {"index": 1, "start": 5, "stop": 10},
                "solved": 5,
                "report": {
                    "counts": {"ok": 5},
                    "elapsed_seconds": 1.0,
                },
            },
        ]
        registry = MetricsRegistry()
        derived = derive_shard_metrics(summaries, registry)
        assert derived["failed_shards"] == 1
        assert derived["straggler_ratio"] == round(2.0 / 1.5, 6)
        assert derived["shards"]["1"]["failed_tasks"] == 1
        assert registry.gauge("sweep_shards_failed").value == 1
        assert registry.gauge(
            "sweep_shard_seconds_per_class", {"shard": "1"}
        ).value == 0.4
