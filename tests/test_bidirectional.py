"""Tests for bidirectional synthesis."""

import pytest

from repro.functions.permutation import Permutation
from repro.synth.bidirectional import synthesize_bidirectional
from repro.synth.options import SynthesisOptions

FAST = SynthesisOptions(dedupe_states=True, max_steps=15_000)


class TestBidirectional:
    def test_forward_wins_when_it_solves(self, fig1_spec):
        result = synthesize_bidirectional(fig1_spec, FAST)
        assert result.solved
        assert result.direction == "forward"
        assert result.inverse is None  # not attempted
        assert result.circuit.implements(fig1_spec)

    def test_always_try_inverse_compares_both(self, fig1_spec):
        result = synthesize_bidirectional(
            fig1_spec, FAST, always_try_inverse=True
        )
        assert result.solved
        assert result.inverse is not None
        assert result.circuit.implements(fig1_spec)
        # The winner is never longer than the forward solution.
        assert result.gate_count <= result.forward.gate_count

    def test_inverse_rescues_forward_failure(self, rng):
        """With a budget too small for the forward direction on some
        spec, the inverse may still succeed; whenever the result is
        solved it must implement the *original* function."""
        for _ in range(5):
            images = list(range(16))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize_bidirectional(
                spec,
                SynthesisOptions(
                    greedy_k=1, restart_steps=500, max_steps=2_500,
                    dedupe_states=True, max_gates=40,
                ),
            )
            if result.solved:
                assert result.circuit.implements(spec)
                assert result.direction in ("forward", "inverse")

    def test_option_kwargs(self, fig1_spec):
        result = synthesize_bidirectional(fig1_spec, FAST, max_steps=500)
        assert result.forward.options.max_steps == 500

    def test_rejects_non_permutation(self):
        with pytest.raises(TypeError):
            synthesize_bidirectional([0, 1, 3, 2], FAST)

    def test_unsolved_both_directions(self):
        # Gate cap below the optimum: both directions must fail.
        spec = Permutation([0, 1, 2, 4, 3, 5, 6, 7])
        result = synthesize_bidirectional(spec, FAST, max_gates=2)
        assert not result.solved
        assert result.direction is None
        assert result.gate_count is None
