"""Tests for circuit profiling."""

from repro.circuits.circuit import Circuit
from repro.circuits.profile import profile_circuit
from repro.gates.fredkin import FredkinGate


class TestProfile:
    def test_empty_circuit(self):
        profile = profile_circuit(Circuit.identity(3))
        assert profile.gate_count == 0
        assert profile.quantum_cost == 0
        assert profile.max_gate_size == 0
        assert profile.busiest_line() is None

    def test_fig3d_breakdown(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)")
        profile = profile_circuit(circuit)
        assert profile.toffoli_by_size == {1: 1, 3: 2}
        assert profile.cost_by_size == {1: 1, 3: 10}
        assert profile.quantum_cost == 11
        assert profile.max_gate_size == 3

    def test_line_activity(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF2(a, b) TOF2(a, c)")
        profile = profile_circuit(circuit)
        assert profile.line_activity == [3, 1, 1]
        assert profile.busiest_line() == 0

    def test_fredkin_counted(self):
        circuit = Circuit(3, [FredkinGate(0b100, 0, 1)])
        profile = profile_circuit(circuit)
        assert profile.fredkin_by_size == {3: 1}
        assert profile.quantum_cost == circuit.quantum_cost()

    def test_render(self):
        circuit = Circuit.parse(3, "TOF1(a) TOF3(a, c, b)")
        text = profile_circuit(circuit).render()
        assert "TOF1" in text and "TOF3" in text and "total" in text

    def test_cost_sums_match(self):
        circuit = Circuit.parse(
            4, "TOF1(a) TOF2(a, b) TOF3(a, b, c) TOF4(a, b, c, d)"
        )
        profile = profile_circuit(circuit)
        assert sum(profile.cost_by_size.values()) == profile.quantum_cost
        assert sum(profile.toffoli_by_size.values()) == profile.gate_count
