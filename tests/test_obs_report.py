"""Tests for the versioned machine-readable run report."""

import json

import pytest

from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.phases import PhaseTimer
from repro.obs.report import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    build_run_report,
    environment_info,
    options_as_dict,
    validate_run_report,
    write_run_report,
)
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


def _instrumented_run(spec, **option_changes):
    registry = MetricsRegistry()
    phases = PhaseTimer(stride=1)
    result = synthesize(
        spec,
        SynthesisOptions(
            dedupe_states=True,
            observers=(MetricsObserver(registry),),
            phase_timer=phases,
            **option_changes,
        ),
    )
    return result, registry, phases


class TestEnvironmentInfo:
    def test_fields(self):
        info = environment_info()
        assert info["repro_version"]
        assert info["python"].count(".") == 2
        json.dumps(info)


class TestOptionsSerialization:
    def test_plain_options_round_trip(self):
        data = options_as_dict(SynthesisOptions(greedy_k=3))
        assert data["greedy_k"] == 3
        assert data["observers"] == []
        json.dumps(data)

    def test_live_objects_summarized_by_class_name(self):
        options = SynthesisOptions(
            observers=(MetricsObserver(),), phase_timer=PhaseTimer()
        )
        data = options_as_dict(options)
        assert data["observers"] == ["MetricsObserver"]
        assert data["phase_timer"] == "PhaseTimer"
        json.dumps(data)


class TestBuildAndValidate:
    def test_full_report_passes_schema_check(self, fig1_spec):
        result, registry, phases = _instrumented_run(
            fig1_spec, max_steps=5_000
        )
        assert result.solved
        report = build_run_report(
            result, registry=registry, phases=phases, benchmark="fig1"
        )
        validate_run_report(report)
        assert report["schema"] == REPORT_SCHEMA
        assert report["version"] == REPORT_VERSION
        assert report["solved"] and report["gate_count"] == result.gate_count
        assert report["benchmark"] == "fig1"
        # The acceptance-criteria histograms are present and populated.
        assert report["metrics"]["elim"]["kind"] == "histogram"
        assert report["metrics"]["elim"]["count"] > 0
        assert report["metrics"]["queue_size"]["kind"] == "histogram"
        assert report["metrics"]["queue_size"]["count"] > 0
        assert report["phases"]["phases"]  # per-phase table non-empty
        assert report["stats"] == result.stats.as_dict()
        json.dumps(report)

    def test_unsolved_report(self, rng):
        from repro.functions.permutation import Permutation

        images = list(range(32))
        rng.shuffle(images)
        result, registry, phases = _instrumented_run(
            Permutation(images), max_steps=5
        )
        report = build_run_report(result, registry=registry, phases=phases)
        validate_run_report(report)
        if not result.solved:
            assert report["gate_count"] is None
            assert report["circuit"] is None

    def test_report_without_instruments(self, fig1_spec):
        result = synthesize(fig1_spec, SynthesisOptions(max_steps=5_000))
        report = build_run_report(result)
        validate_run_report(report)
        assert report["metrics"] is None
        assert report["phases"] is None

    def test_extra_annotations(self, fig1_spec):
        result = synthesize(fig1_spec, SynthesisOptions(max_steps=5_000))
        report = build_run_report(result, extra={"seed": 2004})
        assert report["extra"] == {"seed": 2004}
        validate_run_report(report)

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda report: report.pop("stats"),
            lambda report: report.pop("metrics"),
            lambda report: report.update(schema="bogus"),
            lambda report: report.update(version=99),
            lambda report: report.update(solved="yes"),
            lambda report: report["stats"].pop("steps"),
        ],
    )
    def test_schema_violations_rejected(self, fig1_spec, mutation):
        result = synthesize(fig1_spec, SynthesisOptions(max_steps=5_000))
        report = build_run_report(result)
        mutation(report)
        with pytest.raises(ValueError):
            validate_run_report(report)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_run_report([])


class TestWriteRunReport:
    def test_write_and_reload(self, fig1_spec, tmp_path):
        result, registry, phases = _instrumented_run(
            fig1_spec, max_steps=5_000
        )
        report = build_run_report(result, registry=registry, phases=phases)
        path = tmp_path / "run.json"
        write_run_report(report, path)
        reloaded = json.loads(path.read_text())
        validate_run_report(reloaded)
        assert reloaded["stats"]["steps"] == result.stats.steps

    def test_invalid_report_not_written(self, tmp_path):
        path = tmp_path / "run.json"
        with pytest.raises(ValueError):
            write_run_report({"schema": "bogus"}, path)
        assert not path.exists()
