"""Tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    all_masks,
    bit,
    bits_of,
    gray_code,
    indices_of,
    iter_subsets,
    iter_supersets,
    mask_from_indices,
    parity,
    popcount,
    reverse_bits,
)


class TestPopcountAndBits:
    def test_popcount_zero(self):
        assert popcount(0) == 0

    def test_popcount_full(self):
        assert popcount(0b1111) == 4

    def test_bit(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_bit_negative_rejected(self):
        with pytest.raises(ValueError):
            bit(-1)

    def test_bits_of_order(self):
        assert list(bits_of(0b101001)) == [0, 3, 5]

    def test_bits_of_empty(self):
        assert list(bits_of(0)) == []

    def test_indices_roundtrip(self):
        assert mask_from_indices(indices_of(0b1101)) == 0b1101

    def test_mask_from_indices_duplicate(self):
        with pytest.raises(ValueError):
            mask_from_indices([1, 1])

    @given(st.integers(min_value=0, max_value=2**40))
    def test_popcount_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")


class TestSubsets:
    def test_subsets_of_zero(self):
        assert list(iter_subsets(0)) == [0]

    def test_subsets_count(self):
        subs = list(iter_subsets(0b1011))
        assert len(subs) == 8
        assert len(set(subs)) == 8

    def test_subsets_are_subsets(self):
        for sub in iter_subsets(0b1100101):
            assert sub & ~0b1100101 == 0

    def test_supersets(self):
        supers = list(iter_supersets(0b001, 0b111))
        assert sorted(supers) == [0b001, 0b011, 0b101, 0b111]

    def test_supersets_bad_universe(self):
        with pytest.raises(ValueError):
            list(iter_supersets(0b1000, 0b111))

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_subset_enumeration_complete(self, mask):
        expected = {s for s in range(mask + 1) if s & ~mask == 0}
        assert set(iter_subsets(mask)) == expected


class TestGrayParityReverse:
    def test_gray_code_sequence(self):
        codes = [gray_code(i) for i in range(8)]
        assert codes == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_gray_neighbours_differ_by_one_bit(self):
        for i in range(255):
            assert popcount(gray_code(i) ^ gray_code(i + 1)) == 1

    def test_gray_negative(self):
        with pytest.raises(ValueError):
            gray_code(-1)

    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b111) == 1
        assert parity(0b1001) == 0

    def test_reverse_bits(self):
        assert reverse_bits(0b0011, 4) == 0b1100

    def test_reverse_bits_involution(self):
        for value in range(64):
            assert reverse_bits(reverse_bits(value, 6), 6) == value

    def test_reverse_bits_overflow(self):
        with pytest.raises(ValueError):
            reverse_bits(16, 4)

    def test_all_masks(self):
        assert list(all_masks(2)) == [0, 1, 2, 3]

    def test_all_masks_negative(self):
        with pytest.raises(ValueError):
            all_masks(-1)
