"""The cache-through synthesis service and its unix-socket daemon.

Covers the four cache outcomes (miss, hit, coalesced, bypass), hit
verification with quarantine-on-mismatch, graceful degradation when
the store misbehaves, and one full daemon round trip over the socket
with OpenMetrics export.
"""

import json
import os
import threading

from repro.circuits.circuit import Circuit
from repro.functions.permutation import Permutation
from repro.gates.toffoli import ToffoliGate
from repro.obs import MetricsRegistry
from repro.store import (
    CircuitStore,
    StoreServer,
    SynthesisService,
    canonicalize,
    parse_images,
    request_over_socket,
)
from repro.synth.options import SynthesisOptions

QUICK = SynthesisOptions(dedupe_states=True, max_steps=40_000)

#: A 2-line swap embedded in 3 lines, and a relabeling of it — same
#: canonical key, different caller wire order.
SWAP_01 = [0, 2, 1, 3, 4, 6, 5, 7]
SWAP_02 = [0, 4, 2, 6, 1, 5, 3, 7]


def counter(registry, name) -> int:
    metric = registry.as_dict().get(name)
    return 0 if metric is None else metric["value"]


def make_service(tmp_path, **kwargs):
    registry = MetricsRegistry()
    store = CircuitStore(str(tmp_path / "store"))
    service = SynthesisService(
        store=store, options=QUICK, metrics=registry,
        batch_window_seconds=0.01, **kwargs,
    )
    return service, store, registry


class TestCacheOutcomes:
    def test_miss_then_hit(self, tmp_path):
        service, _store, registry = make_service(tmp_path)
        try:
            first = service.synthesize(SWAP_01)
            assert first["status"] == "ok" and first["cache"] == "miss"
            second = service.synthesize(SWAP_01)
            assert second["cache"] == "hit"
            assert second["real"] == first["real"]
            assert counter(registry, "store_cache_misses_total") == 1
            assert counter(registry, "store_cache_hits_total") == 1
        finally:
            service.close()

    def test_relabeled_spec_hits_and_replays(self, tmp_path):
        service, _store, registry = make_service(tmp_path)
        try:
            first = service.synthesize(SWAP_01)
            assert first["cache"] == "miss"
            second = service.synthesize(SWAP_02)
            assert second["cache"] == "hit"
            assert second["key"] == first["key"]
            from repro.io.real_format import load_real

            replayed = load_real(second["real"])
            assert replayed.implements(Permutation(SWAP_02))
        finally:
            service.close()

    def test_concurrent_duplicates_are_single_flighted(self, tmp_path):
        service, _store, registry = make_service(tmp_path)
        try:
            responses = [None] * 6
            def work(i):
                responses[i] = service.synthesize(SWAP_01)
            threads = [threading.Thread(target=work, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(r["status"] == "ok" for r in responses)
            assert len({r["real"] for r in responses}) == 1
            assert counter(registry, "store_cache_misses_total") == 1
            assert counter(
                registry, "store_singleflight_coalesced_total"
            ) == 5
        finally:
            service.close()

    def test_no_store_means_bypass(self):
        registry = MetricsRegistry()
        service = SynthesisService(
            store=None, options=QUICK, metrics=registry,
            batch_window_seconds=0.01,
        )
        try:
            response = service.synthesize(SWAP_01)
            assert response["status"] == "ok"
            assert response["cache"] == "bypass"
            assert counter(registry, "store_cache_bypass_total") == 1
        finally:
            service.close()

    def test_string_specs_are_accepted(self, tmp_path):
        assert parse_images("0,2, 1,3") == [0, 2, 1, 3]
        service, _store, _registry = make_service(tmp_path)
        try:
            response = service.synthesize("0,2,1,3,4,6,5,7")
            assert response["status"] == "ok"
        finally:
            service.close()

    def test_bad_spec_is_an_error_response(self, tmp_path):
        service, _store, _registry = make_service(tmp_path)
        try:
            response = service.synthesize([0, 0, 1, 1])
            assert response["status"] == "error"
            assert response["error"]
        finally:
            service.close()


class TestHitVerification:
    def test_lying_record_is_quarantined_not_served(self, tmp_path):
        service, store, registry = make_service(tmp_path)
        try:
            # Plant a record under SWAP_01's key whose circuit computes
            # something else entirely.
            canonical = canonicalize(SWAP_01)
            wrong = Circuit(3, [ToffoliGate(0, 2)])
            _record_for(store, canonical, wrong)
            response = service.synthesize(SWAP_01)
            assert response["status"] == "ok"
            assert response["cache"] == "miss"  # the lie was not served
            from repro.io.real_format import load_real

            assert load_real(response["real"]).implements(
                Permutation(SWAP_01)
            )
            assert counter(
                registry, "store_cache_quarantined_total"
            ) == 1
        finally:
            service.close()


def _record_for(store, canonical, circuit):
    """Append a record claiming ``canonical``'s key for ``circuit``
    (which need not implement it) — simulating silent store poison."""
    forged = canonicalize(circuit.to_permutation())
    lying = type(forged)(
        key=canonical.key,
        num_vars=forged.num_vars,
        images=forged.images,
        relabel=forged.relabel,
        exhaustive=forged.exhaustive,
    )
    record, stored = store.put(lying, circuit)
    assert stored
    return record


class TestDaemon:
    def test_socket_round_trip_with_metrics(self, tmp_path):
        service, _store, registry = make_service(tmp_path)
        socket_path = str(tmp_path / "rmrls.sock")
        metrics_path = str(tmp_path / "metrics.txt")
        server = StoreServer(socket_path, service,
                             openmetrics=metrics_path)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        try:
            assert request_over_socket(
                socket_path, {"op": "ping"}
            )["status"] == "ok"
            first = request_over_socket(
                socket_path, {"op": "synth", "spec": SWAP_01}
            )
            assert first["status"] == "ok" and first["cache"] == "miss"
            second = request_over_socket(
                socket_path, {"op": "synth", "spec": SWAP_01}
            )
            assert second["cache"] == "hit"
            assert second["real"] == first["real"]
            stats = request_over_socket(socket_path, {"op": "stats"})
            assert stats["stats"]["store"]["keys"] >= 1
            bad = request_over_socket(socket_path, {"op": "nonsense"})
            assert bad["status"] == "error"
            down = request_over_socket(socket_path, {"op": "shutdown"})
            assert down["shutting_down"]
            thread.join(timeout=10)
            assert not thread.is_alive()
            text = open(metrics_path).read()
            assert "store_cache_hits_total" in text
            assert "store_cache_misses_total" in text
        finally:
            server.close()
            service.close()
        assert not os.path.exists(socket_path)

    def test_stats_document_shape(self, tmp_path):
        service, _store, _registry = make_service(tmp_path)
        try:
            service.synthesize(SWAP_01)
            document = service.stats()
            assert document["schema"] == "rmrls-serve-stats"
            assert document["inflight"] == 0
            json.dumps(document)  # JSON-safe end to end
        finally:
            service.close()
