"""Tests for the optimal BFS baseline — reproduces Table I's optimal
columns exactly."""

import pytest

from repro.baselines.optimal import (
    optimal_distances,
    optimal_distribution,
    optimal_synthesize,
)
from repro.functions.permutation import Permutation
from repro.gates.library import NCT, NCTS

# The paper's Table I optimal columns (Shende et al. [16]).
PAPER_OPTIMAL_NCT = {
    0: 1, 1: 12, 2: 102, 3: 625, 4: 2780,
    5: 8921, 6: 17049, 7: 10253, 8: 577,
}
PAPER_OPTIMAL_NCTS = {
    0: 1, 1: 15, 2: 134, 3: 844, 4: 3752,
    5: 11194, 6: 17531, 7: 6817, 8: 32,
}


class TestExhaustiveSweep:
    def test_table1_nct_column_exact(self):
        assert optimal_distribution(3, NCT) == PAPER_OPTIMAL_NCT

    def test_table1_ncts_column_exact(self):
        assert optimal_distribution(3, NCTS) == PAPER_OPTIMAL_NCTS

    def test_two_variable_sweep_covers_group(self):
        distances = optimal_distances(2, NCT)
        assert len(distances) == 24  # 4! functions

    def test_four_variables_guarded(self):
        with pytest.raises(ValueError):
            optimal_distances(4, NCT)


class TestBidirectionalSynthesis:
    def test_identity(self):
        circuit = optimal_synthesize(Permutation.identity(3), NCT)
        assert circuit.gate_count() == 0

    def test_matches_exhaustive_distances(self, rng):
        distances = optimal_distances(3, NCT)
        images_list = rng.sample(list(distances), 40)
        for images in images_list:
            spec = Permutation(images)
            circuit = optimal_synthesize(spec, NCT, max_gates=9)
            assert circuit is not None
            assert circuit.implements(spec)
            assert circuit.gate_count() == distances[images]

    def test_gives_up_beyond_budget(self):
        # 3_17 needs 6 gates; a 2-gate budget must return None.
        spec = Permutation([7, 1, 4, 3, 0, 2, 6, 5])
        assert optimal_synthesize(spec, NCT, max_gates=2) is None

    def test_four_variable_shallow(self):
        # Example 7 has a known 4-gate realization.
        spec = Permutation(list(range(1, 16)) + [0])
        from repro.gates.library import GT

        circuit = optimal_synthesize(spec, GT, max_gates=4)
        assert circuit is not None
        assert circuit.implements(spec)
        assert circuit.gate_count() == 4


class TestOptimalityCrossChecks:
    def test_rmrls_never_beats_optimal(self, rng):
        """Sanity: no synthesized circuit may undercut the optimum."""
        from repro.synth.options import SynthesisOptions
        from repro.synth.rmrls import synthesize

        distances = optimal_distances(3, NCT)
        options = SynthesisOptions(dedupe_states=True, max_steps=20_000)
        for _ in range(15):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            result = synthesize(spec, options)
            assert result.solved
            assert result.gate_count >= distances[tuple(images)]
