"""Tests for the ESOP substrate: cubes, covers, conversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.esop.convert import cube_to_terms, esop_to_pprm, pprm_to_esop
from repro.esop.cover import EsopCover
from repro.esop.cube import Cube
from repro.pprm.expansion import Expansion
from repro.pprm.transform import truth_vector_to_expansion

truth_vectors = st.lists(st.integers(0, 1), min_size=8, max_size=8)


class TestCube:
    def test_tautology(self):
        cube = Cube.tautology()
        assert cube.literal_count() == 0
        assert all(cube.evaluate(m) for m in range(8))
        assert str(cube) == "1"

    def test_minterm(self):
        cube = Cube.minterm(0b101, 3)
        assert cube.evaluate(0b101) == 1
        assert sum(cube.evaluate(m) for m in range(8)) == 1

    def test_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.minterm(8, 3)

    def test_from_string(self):
        cube = Cube.from_string("1-0")
        # x2 positive, x1 absent, x0 negative.
        assert cube.variable_status(2) == "1"
        assert cube.variable_status(1) == "-"
        assert cube.variable_status(0) == "0"
        assert str(cube) == "a'c"

    def test_from_string_invalid(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_polarity_outside_care_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b01, 0b11)

    def test_evaluation_with_negative_literal(self):
        cube = Cube.from_string("0-")  # x1 negative, x0 free
        assert cube.evaluate(0b00) == 1
        assert cube.evaluate(0b01) == 1
        assert cube.evaluate(0b10) == 0

    def test_distance(self):
        a = Cube.from_string("1-0")
        assert a.distance(a) == 0
        assert a.distance(Cube.from_string("100")) == 1
        assert a.distance(Cube.from_string("011")) == 3

    def test_differing_positions(self):
        a = Cube.from_string("1-0")
        b = Cube.from_string("110")
        assert a.differing_positions(b) == [1]

    def test_with_variable(self):
        cube = Cube.from_string("1-0").with_variable(0, "-")
        assert cube.variable_status(0) == "-"
        with pytest.raises(ValueError):
            cube.with_variable(0, "x")


class TestCover:
    def test_from_truth_vector_counts_minterms(self):
        cover = EsopCover.from_truth_vector([0, 1, 1, 0])
        assert cover.cube_count() == 2
        assert cover.truth_vector() == [0, 1, 1, 0]

    def test_xor_semantics(self):
        # Two overlapping cubes XOR, not OR: b + ab vanishes on 11.
        cover = EsopCover.from_strings(2, ["1-", "11"])
        assert cover.evaluate(0b11) == 0
        assert cover.evaluate(0b10) == 1
        assert cover.evaluate(0b01) == 0

    def test_cancelled(self):
        cover = EsopCover.from_strings(2, ["11", "11", "01"])
        assert cover.cancelled().cube_count() == 1

    def test_cube_out_of_range(self):
        with pytest.raises(ValueError):
            EsopCover(1, [Cube.minterm(2, 2)])

    def test_equivalence(self):
        left = EsopCover.from_truth_vector([0, 1, 1, 0])
        right = EsopCover.from_strings(2, ["-1", "1-"])
        assert left.equivalent_to(right)

    def test_literal_total(self):
        cover = EsopCover.from_strings(3, ["1-0", "111"])
        assert cover.literal_total() == 5


class TestConversion:
    def test_positive_cube_single_term(self):
        assert cube_to_terms(Cube(0b101, 0b101)) == [0b101]

    def test_negative_literal_expands(self):
        # a'b = ab + b.
        cube = Cube.from_string("10")
        assert sorted(cube_to_terms(cube)) == [0b10, 0b11]

    def test_double_negation_four_terms(self):
        cube = Cube.from_string("00")
        assert sorted(cube_to_terms(cube)) == [0, 0b01, 0b10, 0b11]

    @given(truth_vectors)
    def test_esop_to_pprm_is_canonical(self, values):
        cover = EsopCover.from_truth_vector(values)
        assert esop_to_pprm(cover) == truth_vector_to_expansion(values)

    def test_pprm_to_esop_round_trip(self):
        expansion = Expansion([0b101, 0b010, 0])
        cover = pprm_to_esop(expansion, 3)
        assert esop_to_pprm(cover) == expansion
