"""Tests for candidate substitution enumeration (Sec. IV-A/IV-D)."""

from repro.pprm.parser import parse_system
from repro.synth.options import SynthesisOptions
from repro.synth.substitutions import enumerate_substitutions


def fig1_system():
    return parse_system(
        """
        a_out = a + 1
        b_out = b + c + ac
        c_out = b + ab + ac
        """
    )


def by_target(candidates):
    table = {}
    for candidate in candidates:
        table.setdefault(candidate.target, set()).add(candidate.factor)
    return table


class TestBasicEnumeration:
    """Sec. IV-A: factors from v_out,i's own expansion, v_i present."""

    OPTIONS = SynthesisOptions(
        extended_substitutions=False, complement_substitutions=False
    )

    def test_fig1_first_level(self):
        """The paper's Fig. 5 first level: a=a+1, b=b+c, b=b+ac."""
        table = by_target(enumerate_substitutions(fig1_system(), self.OPTIONS))
        assert table == {
            0: {0},            # a := a + 1
            1: {0b100, 0b101}, # b := b + c, b := b + ac
        }

    def test_factor_never_contains_target(self):
        candidates = enumerate_substitutions(fig1_system(), SynthesisOptions())
        for candidate in candidates:
            assert not candidate.factor & (1 << candidate.target)

    def test_solved_output_not_targeted(self):
        system = parse_system("a_out = a\nb_out = b + a")
        table = by_target(enumerate_substitutions(system, self.OPTIONS))
        assert 0 not in table
        assert table[1] == {0b01}


class TestExtendedEnumeration:
    """Sec. IV-D: Fig. 6 adds c=c+b, c=c+ab, b=b+1, c=c+1."""

    def test_fig6_first_level(self):
        table = by_target(
            enumerate_substitutions(fig1_system(), SynthesisOptions())
        )
        assert table == {
            0: {0},
            1: {0b100, 0b101, 0},
            2: {0b010, 0b011, 0},
        }

    def test_complement_only_added_once(self):
        candidates = enumerate_substitutions(fig1_system(), SynthesisOptions())
        complements = [
            c for c in candidates if c.target == 0 and c.factor == 0
        ]
        assert len(complements) == 1

    def test_growth_flags(self):
        """NOT and CNOT factors are growth-exempt by default; wider
        factors are not."""
        candidates = enumerate_substitutions(fig1_system(), SynthesisOptions())
        for candidate in candidates:
            expected = bin(candidate.factor).count("1") <= 1
            assert candidate.allow_growth == expected

    def test_growth_exemption_configurable(self):
        options = SynthesisOptions(growth_exempt_literals=-1)
        candidates = enumerate_substitutions(fig1_system(), options)
        assert all(not c.allow_growth for c in candidates)

    def test_growth_exemption_paper_literal(self):
        options = SynthesisOptions(growth_exempt_literals=0)
        for candidate in enumerate_substitutions(fig1_system(), options):
            assert candidate.allow_growth == (candidate.factor == 0)

    def test_identity_has_no_candidates_except_complements(self):
        system = parse_system("a_out = a\nb_out = b")
        candidates = enumerate_substitutions(system, SynthesisOptions())
        assert candidates == []
