"""Tests for repro.pprm.expansion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pprm.expansion import Expansion
from repro.pprm.parser import parse_expansion

terms_strategy = st.frozensets(
    st.integers(min_value=0, max_value=15), max_size=8
)


class TestConstruction:
    def test_zero(self):
        assert Expansion.zero().is_zero()
        assert len(Expansion.zero()) == 0

    def test_one(self):
        assert Expansion.one().terms == frozenset({0})

    def test_variable(self):
        assert Expansion.variable(2).is_variable(2)
        assert not Expansion.variable(2).is_variable(1)

    def test_duplicate_terms_cancel(self):
        assert Expansion([3, 3]).is_zero()

    def test_triple_terms_keep_one(self):
        assert Expansion([3, 3, 3]).terms == frozenset({3})


class TestAlgebra:
    def test_xor(self):
        left = parse_expansion("a + b")
        right = parse_expansion("b + c")
        assert left ^ right == parse_expansion("a + c")

    def test_xor_self_is_zero(self):
        e = parse_expansion("a + bc + 1")
        assert (e ^ e).is_zero()

    def test_multiply_term(self):
        e = parse_expansion("a + b")
        assert e.multiply_term(0b100) == parse_expansion("ac + bc")

    def test_multiply_collision_cancels(self):
        # (a + ab) * b = ab + ab = 0
        e = parse_expansion("a + ab")
        assert e.multiply_term(0b010).is_zero()

    def test_multiply_by_one(self):
        e = parse_expansion("a + bc")
        assert e.multiply_term(0) == e


class TestSubstitute:
    def test_paper_example(self):
        # b_out = b + c + ac under a := a + 1 becomes b + ac (Sec. IV-B).
        e = parse_expansion("b + c + ac")
        assert e.substitute(0, 0) == parse_expansion("b + ac")

    def test_substitution_without_variable_is_identity(self):
        e = parse_expansion("b + c")
        assert e.substitute(0, 0b10) is e

    def test_factor_containing_target_rejected(self):
        e = parse_expansion("a")
        with pytest.raises(ValueError):
            e.substitute(0, 0b1)

    def test_substitute_is_involution(self):
        e = parse_expansion("a + ab + bc + 1")
        once = e.substitute(0, 0b110)
        assert once.substitute(0, 0b110) == e

    @given(terms_strategy, st.integers(0, 3), st.integers(0, 15))
    def test_substitution_matches_evaluation(self, terms, index, factor):
        factor &= ~(1 << index)
        expansion = Expansion(frozenset(terms))
        substituted = expansion.substitute(index, factor)
        for assignment in range(16):
            flipped = assignment
            if factor & assignment == factor:
                flipped ^= 1 << index
            assert substituted.evaluate(assignment) == expansion.evaluate(
                flipped
            )


class TestQueriesAndDunder:
    def test_support(self):
        assert parse_expansion("a + bc").support() == 0b111

    def test_degree(self):
        assert parse_expansion("1 + abc + b").degree() == 3
        assert Expansion.zero().degree() == 0

    def test_contains(self):
        e = parse_expansion("ab + 1")
        assert 0 in e
        assert 0b11 in e
        assert 0b1 not in e

    def test_iteration_sorted_by_degree(self):
        e = parse_expansion("abc + a + 1 + bc")
        assert list(e) == [0, 0b001, 0b110, 0b111]

    def test_str(self):
        assert str(parse_expansion("b + c + ac")) == "b + c + ac"
        assert str(Expansion.zero()) == "0"

    def test_hashable(self):
        assert len({parse_expansion("a"), parse_expansion("a")}) == 1

    def test_evaluate_constant(self):
        assert Expansion.one().evaluate(0) == 1
        assert Expansion.zero().evaluate(7) == 0


class TestInputValidation:
    """Regression: the constructor must not trust its input.

    The frozenset fast path used to adopt *any* frozenset wholesale,
    letting malformed "expansions" (negative masks, strings, floats)
    flow into the algebra and fail far from the construction site.
    """

    def test_frozenset_with_negative_mask_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Expansion(frozenset({-1}))

    def test_frozenset_with_non_int_rejected(self):
        with pytest.raises(ValueError, match="term masks"):
            Expansion(frozenset({"ab"}))

    def test_iterable_with_float_rejected(self):
        with pytest.raises(ValueError, match="term masks"):
            Expansion([1.5])

    def test_bool_masks_rejected(self):
        # bool is an int subclass; masks must be real ints so that
        # formatting and sorting behave predictably.
        with pytest.raises(ValueError, match="term masks"):
            Expansion([True])

    def test_negative_mask_in_list_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Expansion([3, -2])

    def test_valid_frozenset_still_adopted(self):
        terms = frozenset({0, 3, 5})
        assert Expansion(terms).terms == terms
