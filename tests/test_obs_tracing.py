"""Distributed tracing: spans, shards, collation, view, top, export.

Covers the cross-process observability substrate end to end — wire
contexts and clock-offset negotiation, tolerant shard readers,
byte-identical collation (property-tested over randomized
interleavings), retry-chain causality through the worker pool
(including SIGKILL and OOM attempts), the fleet dashboard, and the
OpenMetrics exporter with trace-derived fleet metrics.
"""

import io
import json
import os
import random

import pytest

from repro.functions.permutation import Permutation
from repro.harness import HarnessConfig, RetryPolicy, probe_task, run_sweep
from repro.obs import (
    MetricsRegistry,
    ShardWriter,
    SpanProgressObserver,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceContext,
    TraceSession,
    TraceValidationError,
    WorkerTraceSession,
    build_timeline,
    cancellation_report,
    collate_shards,
    collate_to_file,
    critical_path,
    derive_fleet_metrics,
    folded_stacks,
    load_collated,
    parse_openmetrics,
    render_openmetrics,
    render_top,
    render_trace_view,
    run_top,
    scan_shards,
    validate_trace,
    write_collated,
)
from repro.parallel.portfolio import synthesize_portfolio
from repro.synth.options import SynthesisOptions


class TestTraceContext:
    def test_wire_roundtrip(self):
        context = TraceContext("abcd", "coord-1", 12.5, 0.25, "/tmp/t")
        rebuilt = TraceContext.from_wire(context.to_wire())
        assert rebuilt.trace_id == "abcd"
        assert rebuilt.span_id == "coord-1"
        assert rebuilt.t0 == 12.5
        assert rebuilt.sent_at == 0.25
        assert rebuilt.trace_dir == "/tmp/t"

    def test_wire_is_json_safe(self):
        wire = TraceContext("abcd", "coord-1", 1.0, 0.0, "/tmp/t").to_wire()
        assert json.loads(json.dumps(wire)) == wire


class TestSessions:
    def test_meta_is_first_line_and_stamps_schema(self, tmp_path):
        session = TraceSession.create(str(tmp_path))
        session.close()
        first = json.loads(
            (tmp_path / "coord.jsonl").read_text().splitlines()[0]
        )
        assert first["kind"] == "meta"
        assert first["schema"] == TRACE_SCHEMA
        assert first["v"] == TRACE_SCHEMA_VERSION
        assert first["process"] == "coord"
        assert first["pid"] == os.getpid()

    def test_span_ids_are_unique_and_process_scoped(self, tmp_path):
        session = TraceSession.create(str(tmp_path))
        ids = [session.begin_span(f"s{i}").span_id for i in range(5)]
        session.close()
        assert len(set(ids)) == 5
        assert all(span_id.startswith("coord-") for span_id in ids)

    def test_span_start_then_end_records(self, tmp_path):
        session = TraceSession.create(str(tmp_path))
        span = session.begin_span("work", task_id="t1")
        span.end(status="ok", gates=4)
        session.close()
        lines = [
            json.loads(line)
            for line in (tmp_path / "coord.jsonl").read_text().splitlines()
        ]
        kinds = [line["kind"] for line in lines]
        assert kinds == ["meta", "start", "span"]
        assert lines[1]["attrs"] == {"task_id": "t1"}
        assert lines[2]["attrs"] == {"task_id": "t1", "gates": 4}
        assert lines[2]["status"] == "ok"
        assert lines[2]["end"] >= lines[2]["start"]

    def test_context_manager_marks_errors(self, tmp_path):
        session = TraceSession.create(str(tmp_path))
        with pytest.raises(RuntimeError):
            with session.span("boom"):
                raise RuntimeError("x")
        session.close()
        last = json.loads(
            (tmp_path / "coord.jsonl").read_text().splitlines()[-1]
        )
        assert last["kind"] == "span"
        assert last["status"] == "error"

    def test_worker_session_shares_trace_and_clock(self, tmp_path):
        coordinator = TraceSession.create(str(tmp_path))
        root = coordinator.begin_span("root")
        worker = WorkerTraceSession.from_wire(coordinator.context_for(root))
        span = worker.begin_span("task", parent=worker.parent_span_id)
        span.end(status="ok")
        worker.close()
        root.end(status="ok")
        coordinator.close()
        collated = collate_shards(str(tmp_path))
        validate_trace(collated)
        spans = [r for r in collated["records"] if r["kind"] == "span"]
        assert {s["trace_id"] for s in spans} == {coordinator.trace_id}
        child = next(s for s in spans if s["name"] == "task")
        assert child["parent_id"] == root.span_id
        # Shared CLOCK_MONOTONIC on Linux: the handshake negotiates a
        # zero offset, and the child cannot precede the launch instant.
        assert worker.clock_offset == 0.0
        parent = next(s for s in spans if s["name"] == "root")
        assert child["start"] >= parent["start"]

    def test_clock_offset_negotiated_when_clocks_diverge(self, tmp_path):
        coordinator = TraceSession.create(str(tmp_path))
        root = coordinator.begin_span("root")
        wire = coordinator.context_for(root)
        # Simulate a worker whose monotonic clock reads far behind the
        # coordinator's: its raw trace-relative reading lands before
        # sent_at, so the handshake must shift it forward.
        import time as _time

        wire = dict(wire, t0=_time.monotonic() + 100.0, sent_at=50.0)
        worker = WorkerTraceSession.from_wire(wire)
        assert worker.clock_offset > 0.0
        assert worker.now() >= 50.0
        worker.close()
        coordinator.close()

    def test_one_flushed_line_per_record(self, tmp_path):
        # A reader opening the shard mid-run sees only complete lines.
        session = TraceSession.create(str(tmp_path))
        session.begin_span("alpha")
        with open(tmp_path / "coord.jsonl") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
        session.close()


def _write_shard(path, records):
    writer = ShardWriter(str(path))
    for record in records:
        writer.write(record)
    writer.close()


def _span_record(span_id, name, start, end, parent=None, process="p0",
                 status="ok", attrs=None, trace_id="t" * 16):
    return {
        "v": TRACE_SCHEMA_VERSION,
        "kind": "span",
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "process": process,
        "start": start,
        "end": end,
        "status": status,
        "attrs": dict(attrs or {}),
    }


def _meta_record(process, trace_id="t" * 16):
    return {
        "v": TRACE_SCHEMA_VERSION,
        "schema": TRACE_SCHEMA,
        "kind": "meta",
        "trace_id": trace_id,
        "process": process,
        "pid": 1,
        "clock_offset": 0.0,
    }


def _event_record(name, time_, span=None, process="p0", attrs=None,
                  trace_id="t" * 16):
    return {
        "v": TRACE_SCHEMA_VERSION,
        "kind": "event",
        "trace_id": trace_id,
        "span_id": span,
        "name": name,
        "process": process,
        "time": time_,
        "attrs": dict(attrs or {}),
    }


class TestCollation:
    def test_truncated_tail_line_skipped_and_counted(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            _span_record("a-1", "root", 0.0, 1.0, process="a"),
        ])
        with open(tmp_path / "a.jsonl", "a") as handle:
            handle.write('{"kind": "span", "trunc')  # SIGKILL mid-write
        collated = collate_shards(str(tmp_path))
        assert collated["header"]["skipped_lines"] == 1
        assert collated["header"]["skipped_by_shard"] == {"a.jsonl": 1}
        assert len(collated["records"]) == 2

    def test_interleaved_garbage_skipped(self, tmp_path):
        shard = tmp_path / "a.jsonl"
        good = [
            _meta_record("a"),
            _span_record("a-1", "root", 0.0, 1.0, process="a"),
        ]
        text = "\n".join(
            json.dumps(record) for record in good
        )
        shard.write_text(f"not json\n{text}\n[1, 2]\n")
        collated = collate_shards(str(tmp_path))
        assert collated["header"]["skipped_lines"] == 2
        assert len(collated["records"]) == 2

    def test_mixed_trace_ids_rejected(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [_meta_record("a", "a" * 16)])
        _write_shard(tmp_path / "b.jsonl", [_meta_record("b", "b" * 16)])
        with pytest.raises(TraceValidationError, match="different traces"):
            collate_shards(str(tmp_path))

    def test_start_superseded_by_end_open_span_kept(self, tmp_path):
        start = {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "start",
            "trace_id": "t" * 16,
            "span_id": "a-1",
            "parent_id": None,
            "name": "done",
            "process": "a",
            "start": 0.0,
            "attrs": {},
        }
        open_start = dict(start, span_id="a-2", name="died", start=0.5)
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            start,
            _span_record("a-1", "done", 0.0, 1.0, process="a"),
            open_start,  # the worker was SIGKILLed before ending it
        ])
        collated = collate_shards(str(tmp_path))
        kinds = [(r["kind"], r.get("span_id")) for r in collated["records"]]
        assert ("start", "a-1") not in kinds
        assert ("start", "a-2") in kinds
        assert ("span", "a-1") in kinds
        assert collated["header"]["open_spans"] == 1

    def test_collated_output_excluded_from_rescan(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            _span_record("a-1", "root", 0.0, 1.0, process="a"),
        ])
        out = tmp_path / "collated.trace.jsonl"
        collate_to_file(str(tmp_path), str(out))
        again = collate_shards(str(tmp_path))
        assert again["header"]["shards"] == ["a.jsonl"]
        assert len(again["records"]) == 2

    def test_load_collated_roundtrip(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            _span_record("a-1", "root", 0.0, 1.0, process="a"),
        ])
        collated = collate_shards(str(tmp_path))
        stream = io.StringIO()
        write_collated(collated, stream)
        stream.seek(0)
        loaded = load_collated(stream)
        assert loaded["header"]["trace_id"] == collated["header"]["trace_id"]
        assert loaded["records"] == collated["records"]

    def test_validate_rejects_orphan_parent(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            _span_record("a-1", "child", 0.0, 1.0, parent="ghost-9",
                         process="a"),
        ])
        collated = collate_shards(str(tmp_path))
        with pytest.raises(TraceValidationError, match="ghost-9"):
            validate_trace(collated)

    def test_validate_rejects_wrong_schema_version(self, tmp_path):
        _write_shard(tmp_path / "a.jsonl", [
            _meta_record("a"),
            _span_record("a-1", "root", 0.0, 1.0, process="a"),
        ])
        collated = collate_shards(str(tmp_path))
        collated["header"]["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(TraceValidationError, match="version"):
            validate_trace(collated)


class TestCollationDeterminism:
    """Satellite: byte-identical collation regardless of interleaving."""

    PROCESSES = ("coord", "worker-coord-2", "worker-coord-3")

    def _records(self, rng):
        records = []
        serial = {process: 0 for process in self.PROCESSES}
        for _ in range(40):
            process = rng.choice(self.PROCESSES)
            serial[process] += 1
            span_id = f"{process}-{serial[process]}"
            # Coarse timestamps force plenty of ties, exercising the
            # kind-rank / span-id / canonical-JSON tiebreaks.
            start = rng.choice([0.0, 0.1, 0.2, 0.3])
            if rng.random() < 0.3:
                records.append(_event_record(
                    "progress", start, span=span_id, process=process,
                    attrs={"step": serial[process]},
                ))
            else:
                records.append(_span_record(
                    span_id, f"work:{serial[process]}", start,
                    start + 0.05, process=process,
                ))
        return records

    def _collate_bytes(self, tmp_path, name, records, rng):
        directory = tmp_path / name
        directory.mkdir()
        shards = {
            process: [_meta_record(process)]
            for process in self.PROCESSES
        }
        # Randomized interleaving: each record lands in a random
        # process's shard file, in random arrival order.
        shuffled = list(records)
        rng.shuffle(shuffled)
        for record in shuffled:
            shards[rng.choice(self.PROCESSES)].append(record)
        for process, assigned in shards.items():
            _write_shard(directory / f"{process}.jsonl", assigned)
        out = directory / "out.trace.jsonl"
        collate_to_file(str(directory), str(out))
        return out.read_bytes()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_byte_identical_over_randomized_interleavings(
        self, tmp_path, seed
    ):
        rng = random.Random(seed)
        records = self._records(rng)
        reference = self._collate_bytes(
            tmp_path, "ref", records, random.Random(seed + 100)
        )
        for trial in range(3):
            again = self._collate_bytes(
                tmp_path, f"trial{trial}", records,
                random.Random(seed + 200 + trial),
            )
            assert again == reference

    def test_listing_order_independence(self, tmp_path, monkeypatch):
        rng = random.Random(7)
        records = self._records(rng)
        reference = self._collate_bytes(
            tmp_path, "ref", records, random.Random(8)
        )
        real_listdir = os.listdir
        monkeypatch.setattr(
            os, "listdir", lambda path: list(reversed(real_listdir(path)))
        )
        reversed_order = self._collate_bytes(
            tmp_path, "rev", records, random.Random(8)
        )
        assert reversed_order == reference


class TestTraceView:
    def _collated(self):
        records = [
            _meta_record("coord", "c" * 16),
            _span_record("coord-1", "portfolio", 0.0, 1.0, process="coord",
                         trace_id="c" * 16),
            _span_record("coord-2", "attempt:slice0", 0.1, 0.9,
                         parent="coord-1", process="coord",
                         attrs={"slice": 0}, trace_id="c" * 16),
            _span_record("coord-3", "attempt:slice1", 0.1, 0.8,
                         parent="coord-1", process="coord",
                         status="cancelled",
                         attrs={"slice": 1, "cancelled": True},
                         trace_id="c" * 16),
            _event_record("incumbent_arrived", 0.6, span="coord-1",
                          process="coord", attrs={"gate_count": 4},
                          trace_id="c" * 16),
        ]
        return {
            "header": {
                "schema": TRACE_SCHEMA, "v": TRACE_SCHEMA_VERSION,
                "trace_id": "c" * 16, "records": len(records),
                "shards": ["coord.jsonl"], "skipped_lines": 0,
                "open_spans": 0,
            },
            "records": records,
        }

    def test_timeline_nesting(self):
        roots = build_timeline(self._collated())
        assert [root.name for root in roots] == ["portfolio"]
        assert sorted(c.name for c in roots[0].children) == [
            "attempt:slice0", "attempt:slice1",
        ]

    def test_critical_path_charges_self_time(self):
        path = critical_path(build_timeline(self._collated()))
        assert [entry["name"] for entry in path] == [
            "portfolio", "attempt:slice0",
        ]
        total = sum(entry["self"] for entry in path)
        assert total == pytest.approx(1.0)

    def test_folded_stacks_format(self):
        text = folded_stacks(build_timeline(self._collated()))
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert "portfolio" in lines
        assert "portfolio;attempt:slice0" in lines
        assert int(lines["portfolio;attempt:slice0"]) == 800_000

    def test_cancellation_latency_from_incumbent_arrival(self):
        report = cancellation_report(build_timeline(self._collated()))
        assert report["incumbent_arrived"] == pytest.approx(0.6)
        assert report["incumbent"] == {"gate_count": 4}
        (loser,) = report["losers"]
        assert loser["slice"] == 1
        assert loser["latency_seconds"] == pytest.approx(0.2)

    def test_render_trace_view_mentions_everything(self):
        text = render_trace_view(self._collated())
        assert "portfolio" in text
        assert "critical path" in text
        assert "cancellation latency" in text
        assert "attempt:slice1" in text


class TestTop:
    def test_scan_renders_from_filesystem_alone(self, tmp_path):
        _write_shard(tmp_path / "coord.jsonl", [
            _meta_record("coord"),
            {
                "v": TRACE_SCHEMA_VERSION, "kind": "start",
                "trace_id": "t" * 16, "span_id": "coord-1",
                "parent_id": None, "name": "attempt:x",
                "process": "coord", "start": 0.0,
                "attrs": {"retry_of": "coord-0"},
            },
            _span_record("coord-1", "attempt:x", 0.0, 0.4, process="coord",
                         attrs={"retry_of": "coord-0"}),
            _event_record("sched", 0.1, process="coord",
                          attrs={"pending": 3, "running": 2, "finished": 1}),
        ])
        _write_shard(tmp_path / "worker-coord-1.jsonl", [
            _meta_record("worker-coord-1"),
            {
                "v": TRACE_SCHEMA_VERSION, "kind": "start",
                "trace_id": "t" * 16, "span_id": "worker-coord-1-1",
                "parent_id": "coord-1", "name": "task:portfolio",
                "process": "worker-coord-1", "start": 0.05, "attrs": {},
            },
            _event_record("progress", 0.2, span="worker-coord-1-1",
                          process="worker-coord-1",
                          attrs={"step": 512, "queue_size": 40,
                                 "best_depth": 6}),
            _event_record("bound_published", 0.3, process="worker-coord-1",
                          attrs={"depth": 6}),
        ])
        snapshot = scan_shards(str(tmp_path))
        assert snapshot.shards == 2
        assert snapshot.sched["pending"] == 3
        assert snapshot.workers["coord"].retries == 1
        worker = snapshot.workers["worker-coord-1"]
        assert worker.state.startswith("running task:portfolio")
        assert worker.progress["step"] == 512
        assert len(snapshot.bound_history) == 1
        text = render_top(snapshot)
        assert "task:portfolio" in text
        assert "bound_published" in text
        assert "pending=3" in text

    def test_tolerates_mid_write_shards(self, tmp_path):
        (tmp_path / "coord.jsonl").write_text(
            json.dumps(_meta_record("coord")) + "\n" + '{"kind": "sp'
        )
        snapshot = scan_shards(str(tmp_path))
        assert snapshot.skipped_lines == 1
        assert snapshot.trace_id == "t" * 16

    def test_missing_directory_is_empty_not_fatal(self, tmp_path):
        snapshot = scan_shards(str(tmp_path / "absent"))
        assert snapshot.shards == 0
        assert "no shards yet" in render_top(snapshot)

    def test_run_top_once_writes_one_frame(self, tmp_path):
        _write_shard(tmp_path / "coord.jsonl", [_meta_record("coord")])
        stream = io.StringIO()
        assert run_top(str(tmp_path), once=True, stream=stream) == 0
        frame = stream.getvalue()
        assert frame.count("rmrls top") == 1
        assert "\x1b" not in frame  # no ANSI clear on non-TTY streams


class TestRetryChainTracing:
    """Satellite: retries reuse the trace id, fresh span ids, and a
    ``retry_of`` link — visible in the collated timeline."""

    def _attempt_spans(self, trace_dir, label):
        collated = collate_shards(str(trace_dir))
        validate_trace(collated)
        spans = [
            record for record in collated["records"]
            if record["kind"] == "span"
            and record["name"] == f"attempt:{label}"
        ]
        spans.sort(key=lambda record: record["attrs"]["attempt"])
        return collated, spans

    def _assert_chain(self, collated, spans, statuses):
        assert [span["status"] for span in spans] == statuses
        assert len({span["trace_id"] for span in spans}) == 1
        assert len({span["span_id"] for span in spans}) == len(spans)
        for earlier, later in zip(spans, spans[1:]):
            assert later["attrs"]["retry_of"] == earlier["span_id"]
        assert "retry_of" not in spans[0]["attrs"]

    def test_inline_retry_chain(self, tmp_path):
        task = probe_task("flaky", ok_after=3,
                          meta={"label": "p"}, namespace="t")
        config = HarnessConfig(
            isolate=False, retry=RetryPolicy(max_retries=2),
            trace_dir=str(tmp_path / "trace"),
        )
        report = run_sweep("s", [task], config=config)
        assert report.completed == 1
        collated, spans = self._attempt_spans(tmp_path / "trace", "p")
        self._assert_chain(collated, spans, ["crash", "crash", "ok"])

    def test_pool_retry_chain(self, tmp_path):
        task = probe_task("flaky", ok_after=2,
                          meta={"label": "p"}, namespace="t")
        config = HarnessConfig(
            isolate=True, jobs=1, retry=RetryPolicy(max_retries=1),
            trace_dir=str(tmp_path / "trace"),
        )
        report = run_sweep("s", [task], config=config)
        assert report.completed == 1
        collated, spans = self._attempt_spans(tmp_path / "trace", "p")
        self._assert_chain(collated, spans, ["crash", "ok"])
        # Each attempt ran on its own worker process, in its own shard
        # named after the attempt span the coordinator minted.
        task_spans = [
            record for record in collated["records"]
            if record["kind"] == "span" and record["name"] == "task:probe"
        ]
        assert len(task_spans) == 2
        parents = {span["parent_id"] for span in task_spans}
        assert parents == {span["span_id"] for span in spans}

    def test_sigkilled_attempt_visible_in_chain(self, tmp_path):
        task = probe_task("hang", seconds=30.0,
                          meta={"label": "p"}, namespace="t")
        config = HarnessConfig(
            isolate=True, jobs=1, wall_seconds=0.3,
            retry=RetryPolicy(max_retries=1, time_factor=1.0),
            trace_dir=str(tmp_path / "trace"),
        )
        run_sweep("s", [task], config=config)
        collated, spans = self._attempt_spans(tmp_path / "trace", "p")
        self._assert_chain(collated, spans, ["hang", "hang"])
        assert all(span["attrs"].get("killed") for span in spans)
        # The SIGKILLed worker never ended its task span: it survives
        # collation as an open ``start`` record.
        open_tasks = [
            record for record in collated["records"]
            if record["kind"] == "start"
            and record["name"] == "task:probe"
        ]
        assert len(open_tasks) == 2
        assert collated["header"]["open_spans"] >= 2

    def test_oom_attempt_visible_in_chain(self, tmp_path):
        task = probe_task("oom", mbytes=4096,
                          meta={"label": "p"}, namespace="t")
        config = HarnessConfig(
            isolate=True, jobs=1, mem_limit_mb=128,
            retry=RetryPolicy(max_retries=1, mem_factor=1.0),
            trace_dir=str(tmp_path / "trace"),
        )
        run_sweep("s", [task], config=config)
        collated, spans = self._attempt_spans(tmp_path / "trace", "p")
        self._assert_chain(collated, spans, ["oom", "oom"])


class TestExport:
    def test_openmetrics_roundtrip_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(42)
        registry.counter("busy", labels={"worker": "w0"}).inc(3)
        registry.counter("busy", labels={"worker": "w1"}).inc(5)
        registry.gauge("ratio").set(1.5)
        registry.histogram("depth", (1, 4)).observe(2)
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert families["steps"]["type"] == "counter"
        busy = {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in families["busy"]["samples"]
        }
        assert busy == {(("worker", "w0"),): 3.0, (("worker", "w1"),): 5.0}
        buckets = [
            sample for sample in families["depth"]["samples"]
            if sample["name"] == "depth_bucket"
        ]
        assert [b["value"] for b in buckets] == [0.0, 1.0, 1.0]

    def test_parse_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_derive_fleet_metrics(self):
        records = [
            _meta_record("coord", "c" * 16),
            _span_record("coord-1", "portfolio", 0.0, 1.0, process="coord",
                         trace_id="c" * 16),
            _span_record("coord-2", "attempt:slice1", 0.1, 0.8,
                         parent="coord-1", process="coord",
                         status="cancelled",
                         attrs={"slice": 1, "cancelled": True},
                         trace_id="c" * 16),
            _span_record("w0-1", "task:portfolio", 0.1, 0.7,
                         parent="coord-1", process="w0",
                         trace_id="c" * 16),
            _span_record("w1-1", "task:portfolio", 0.1, 0.3,
                         parent="coord-1", process="w1",
                         trace_id="c" * 16),
            _event_record("incumbent_arrived", 0.6, span="coord-1",
                          process="coord", trace_id="c" * 16),
            _event_record("bound_published", 0.2, span="w0-1",
                          process="w0", attrs={"depth": 5},
                          trace_id="c" * 16),
            _event_record("bound_adopted", 0.25, span="w1-1",
                          process="w1", attrs={"depth": 5},
                          trace_id="c" * 16),
        ]
        collated = {
            "header": {"trace_id": "c" * 16},
            "records": records,
        }
        registry = MetricsRegistry()
        summary = derive_fleet_metrics(collated, registry)
        assert summary["wall_seconds"] == pytest.approx(1.0)
        assert summary["worker_busy_seconds"]["w0"] == pytest.approx(0.6)
        assert summary["worker_busy_seconds"]["w1"] == pytest.approx(0.2)
        assert summary["straggler_ratio"] == pytest.approx(0.6 / 0.4)
        assert summary["cancellation_latency_seconds"] == {
            "1": pytest.approx(0.2),
        }
        assert summary["bound_adoptions"] == {"w1": 1}
        assert summary["bound_publications"] == {"w0": 1}
        assert registry.gauge(
            "fleet_worker_utilization", labels={"worker": "w0"}
        ).value == pytest.approx(0.6)
        assert registry.gauge("fleet_straggler_ratio").value == (
            pytest.approx(1.5)
        )
        text = render_openmetrics(registry)
        assert 'fleet_cancellation_latency_seconds{slice="1"}' in text


class TestTracedPortfolioEndToEnd:
    def test_two_job_race_collates_to_causal_timeline(self, tmp_path):
        trace_dir = tmp_path / "trace"
        options = SynthesisOptions(
            trace_dir=str(trace_dir), stop_at_first=True, max_steps=20_000,
        )
        result = synthesize_portfolio(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]), options, jobs=2,
        )
        assert result.solved
        collated = collate_shards(str(trace_dir))
        validate_trace(collated)
        spans = [r for r in collated["records"] if r["kind"] == "span"]
        names = {span["name"] for span in spans}
        assert "portfolio" in names
        assert any(name.startswith("attempt:") for name in names)
        assert "task:portfolio" in names
        # Causal linkage: every task span's parent is an attempt span
        # minted by the coordinator; every attempt's parent is the root.
        by_id = {span["span_id"]: span for span in spans}
        root = next(s for s in spans if s["name"] == "portfolio")
        for span in spans:
            if span["name"] == "task:portfolio":
                attempt = by_id[span["parent_id"]]
                assert attempt["name"].startswith("attempt:")
                assert attempt["parent_id"] == root["span_id"]
        events = {
            record["name"]
            for record in collated["records"]
            if record["kind"] == "event"
        }
        assert "incumbent_arrived" in events
        assert "search_finished" in events
        # The fleet view renders from the shards alone.
        text = render_top(scan_shards(str(trace_dir)))
        assert collated["header"]["trace_id"] in text

    def test_untraced_run_writes_nothing(self, tmp_path):
        options = SynthesisOptions(stop_at_first=True, max_steps=20_000)
        result = synthesize_portfolio(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]), options, jobs=2,
        )
        assert result.solved
        assert list(tmp_path.iterdir()) == []

    def test_trace_dir_never_enters_task_fingerprint(self):
        from repro.harness.tasks import permutation_task

        bare = permutation_task([1, 0, 2, 3], options=SynthesisOptions())
        traced = permutation_task(
            [1, 0, 2, 3],
            options=SynthesisOptions(trace_dir="/tmp/somewhere"),
        )
        assert bare.task_id == traced.task_id


class TestCliTracing:
    def _trace_dir(self, tmp_path):
        directory = tmp_path / "trace"
        session = TraceSession.create(str(directory))
        root = session.begin_span("sweep:demo")
        child = session.begin_span("attempt:x", parent=root)
        child.end(status="ok")
        root.end(status="ok")
        session.close()
        return directory

    def test_collate_view_top_commands(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._trace_dir(tmp_path)
        assert main(["trace", "collate", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "collated.trace.jsonl" in out
        collated_path = directory / "collated.trace.jsonl"
        assert collated_path.exists()

        assert main(["trace", "view", str(collated_path)]) == 0
        assert "sweep:demo" in capsys.readouterr().out

        folded = tmp_path / "stacks.folded"
        assert main([
            "trace", "view", str(directory), "--folded", str(folded),
        ]) == 0
        capsys.readouterr()
        assert "sweep:demo;attempt:x" in folded.read_text()

        assert main(["top", str(directory), "--once"]) == 0
        assert "rmrls top" in capsys.readouterr().out

    def test_collate_missing_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "collate", str(tmp_path / "absent")]) == 2
        assert "collate failed" in capsys.readouterr().err

    def test_synth_trace_dir_and_openmetrics(self, tmp_path, capsys):
        from repro.cli import main

        trace_dir = tmp_path / "trace"
        metrics_path = tmp_path / "run.prom"
        code = main([
            "synth", "--spec", "1,0,3,2,5,7,4,6", "--jobs", "2",
            "--trace-dir", str(trace_dir),
            "--openmetrics", str(metrics_path),
        ])
        capsys.readouterr()
        assert code == 0
        families = parse_openmetrics(metrics_path.read_text())
        assert "fleet_worker_utilization" in families
        assert "fleet_worker_busy_seconds" in families
        assert any(name.startswith("hotop_") for name in families)


class TestSpanProgressObserver:
    def test_events_flow_to_shard(self, tmp_path):
        from repro.synth.rmrls import synthesize

        session = TraceSession.create(str(tmp_path))
        span = session.begin_span("task:perm")
        observer = SpanProgressObserver(session, span, every=8)
        result = synthesize(
            Permutation([1, 0, 3, 2, 5, 7, 4, 6]),
            SynthesisOptions(observers=(observer,)),
        )
        span.end(status="ok")
        session.close()
        assert result.solved
        collated = collate_shards(str(tmp_path))
        events = [
            record for record in collated["records"]
            if record["kind"] == "event"
        ]
        names = {event["name"] for event in events}
        assert "progress" in names
        assert "solution_found" in names
        assert "search_finished" in names
        assert all(
            event["span_id"] == span.span_id for event in events
        )

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanProgressObserver(None, every=0)
