"""The strategy-deck layer (repro.parallel.strategy / .adaptive).

Unit coverage for the variant catalog, strategy resolution, the
largest-remainder slot allocator, deck construction, the spec-family
key, the tolerant stats reader/appender, Laplace bias weights — and
the ``rmrls strategies`` / ``rmrls synth --direction`` CLI surface.
All of it is pure data and arithmetic, so every assertion here is
exact: same inputs, same deck, same bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.functions.permutation import Permutation
from repro.parallel import (
    BUILTIN_VARIANTS,
    DECKS,
    PortfolioSummary,
    SliceOutcome,
    allocate_slots,
    bias_weights,
    build_deck,
    load_stats,
    record_portfolio,
    resolve_strategies,
    spec_family,
    variant,
)
from repro.parallel.strategy import StrategyVariant
from repro.synth.options import SynthesisOptions


class TestStrategyVariant:
    def test_paper_baseline_is_identity(self):
        options = SynthesisOptions()
        paper = resolve_strategies("paper")[0]
        assert paper.apply(options) is options
        assert paper.as_dict() == {
            "name": "paper", "direction": "forward", "deltas": {},
        }

    def test_deltas_apply_over_options(self):
        greedy = resolve_strategies("greedy")[0]
        options = greedy.apply(SynthesisOptions())
        assert options.greedy_k == 1
        assert options.restart_steps == 10_000

    def test_deltas_are_sorted_and_validated(self):
        entry = variant("x", restart_steps=5, alpha=0.2)
        assert entry.deltas == (("alpha", 0.2), ("restart_steps", 5))
        with pytest.raises(ValueError, match="tunable"):
            variant("bad", max_steps=10)
        with pytest.raises(ValueError, match="direction"):
            variant("bad", direction="sideways")
        with pytest.raises(ValueError, match="name"):
            StrategyVariant(name="")

    def test_catalog_is_deterministic(self):
        names = [entry.name for entry in BUILTIN_VARIANTS]
        assert names == [
            "paper", "greedy", "wide", "deepen", "eliminate",
            "inverse", "inverse-greedy", "packed",
        ]
        assert DECKS["default"] == ("paper", "greedy", "inverse", "eliminate")
        assert DECKS["full"] == tuple(names)


class TestResolveStrategies:
    def test_none_and_empty_mean_homogeneous(self):
        assert resolve_strategies(None) == ()
        assert resolve_strategies("") == ()
        assert resolve_strategies("  ") == ()

    def test_deck_name(self):
        deck = resolve_strategies("default")
        assert [entry.name for entry in deck] == list(DECKS["default"])

    def test_comma_string_and_iterable(self):
        by_string = resolve_strategies("paper, greedy")
        by_list = resolve_strategies(["paper", "greedy"])
        assert by_string == by_list
        custom = variant("mine", alpha=0.5)
        mixed = resolve_strategies(["paper", custom])
        assert mixed[1] is custom

    def test_single_variant_passthrough(self):
        custom = variant("mine")
        assert resolve_strategies(custom) == (custom,)

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ValueError, match="paper"):
            resolve_strategies("nope")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            resolve_strategies("paper,paper")


class TestAllocateSlots:
    def test_equal_weights_round_robin(self):
        assert allocate_slots(4, 4) == [0, 1, 2, 3]
        assert allocate_slots(2, 5) == [0, 0, 0, 1, 1]

    def test_fewer_jobs_than_variants(self):
        assert allocate_slots(4, 2) == [0, 1]

    def test_weights_bias_the_split(self):
        assert allocate_slots(2, 4, weights=[3.0, 1.0]) == [0, 0, 0, 1]

    def test_seed_rotates_only_tie_breaks(self):
        base = allocate_slots(4, 2, seed=0)
        rotated = allocate_slots(4, 2, seed=2)
        assert base == [0, 1]
        assert rotated == [2, 3]
        # Replays are exact: same seed, same deck.
        assert allocate_slots(4, 2, seed=2) == rotated

    def test_degenerate_weights_fall_back_to_equal(self):
        assert allocate_slots(2, 2, weights=[0.0, 0.0]) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_slots(0, 2)
        with pytest.raises(ValueError):
            allocate_slots(2, 0)
        with pytest.raises(ValueError):
            allocate_slots(2, 2, weights=[1.0])
        with pytest.raises(ValueError):
            allocate_slots(2, 2, weights=[1.0, -1.0])


class TestBuildDeck:
    def test_default_deck_partitions_both_directions(self):
        deck = build_deck(
            resolve_strategies("default"), jobs=4,
            forward_seed_count=6, inverse_seed_count=5,
        )
        assert deck.variant_names == (
            "paper", "greedy", "inverse", "eliminate"
        )
        by_name = {slot.variant.name: slot for slot in deck.slots}
        # Three forward slots split six seeds round-robin; the inverse
        # slot owns the whole inverse pool.
        assert by_name["paper"].seed_ranks == (0, 3)
        assert by_name["greedy"].seed_ranks == (1, 4)
        assert by_name["eliminate"].seed_ranks == (2, 5)
        assert by_name["inverse"].seed_ranks == (0, 1, 2, 3, 4)
        forward_ranks = sorted(
            rank
            for slot in deck.slots
            if slot.variant.direction == "forward"
            for rank in slot.seed_ranks
        )
        assert forward_ranks == list(range(6))

    def test_empty_slices_are_dropped_and_reindexed(self):
        deck = build_deck(
            resolve_strategies("paper"), jobs=4, forward_seed_count=2
        )
        assert len(deck.slots) == 2
        assert [slot.slot for slot in deck.slots] == [0, 1]
        assert all(slot.seed_ranks for slot in deck.slots)

    def test_inverse_without_pool_runs_unrestricted(self):
        deck = build_deck(
            resolve_strategies("paper,inverse"), jobs=2,
            forward_seed_count=4, inverse_seed_count=0,
        )
        by_name = {slot.variant.name: slot for slot in deck.slots}
        assert by_name["inverse"].seed_ranks is None
        assert by_name["paper"].seed_ranks == (0, 1, 2, 3)

    def test_bidirectional_slots_are_unrestricted(self):
        deck = build_deck(
            [variant("both", direction="bidirectional")], jobs=1,
            forward_seed_count=3,
        )
        assert deck.slots[0].seed_ranks is None

    def test_decks_replay_identically(self):
        kwargs = dict(jobs=4, forward_seed_count=7, inverse_seed_count=7)
        first = build_deck(resolve_strategies("default"), **kwargs)
        second = build_deck(resolve_strategies("default"), **kwargs)
        assert first.as_dict() == second.as_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            build_deck((), jobs=2, forward_seed_count=3)
        with pytest.raises(ValueError):
            build_deck(
                resolve_strategies("paper"), jobs=2, forward_seed_count=0
            )


class TestSpecFamily:
    def test_family_key_shape(self, fig1_spec):
        family = spec_family(fig1_spec.to_pprm())
        num_vars, terms = family.split(":")
        assert num_vars == "v3"
        counts = terms[1:].split("-")
        assert len(counts) == 3
        assert counts == sorted(counts, key=int)

    def test_wire_relabeling_lands_in_same_family(self, fig1_spec):
        # Conjugating by a wire swap permutes variables inside terms
        # and outputs across lines; sorted term counts are invariant.
        relabeled = Permutation(
            [_swap01(fig1_spec.images[_swap01(x)]) for x in range(8)]
        )
        assert spec_family(relabeled.to_pprm()) == spec_family(
            fig1_spec.to_pprm()
        )


def _swap01(value: int) -> int:
    """Swap bits 0 and 1 of a 3-bit value."""
    low = value & 1
    mid = (value >> 1) & 1
    return (value & ~3) | (low << 1) | mid


def _summary(winner: str) -> PortfolioSummary:
    """A minimal two-variant heterogeneous summary for stats tests."""
    summary = PortfolioSummary(jobs=2, seed_count=4)
    summary.slices = [
        SliceOutcome(
            slice_index=0, seed_ranks=(0, 2), status="ok",
            finish_reason="solved", gate_count=3,
            stats={"steps": 10}, variant="paper",
        ),
        SliceOutcome(
            slice_index=1, seed_ranks=(1, 3), status="unsolved",
            finish_reason="queue_exhausted",
            stats={"steps": 25}, variant="eliminate",
        ),
    ]
    summary.winner_variant = winner
    return summary


class TestAdaptiveStats:
    def test_record_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        assert record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        stats = load_stats(path)
        assert stats.records == 1
        assert stats.skipped == 0
        family = stats.family("v3:t2-3-3")
        assert family["paper"] == {"wins": 1, "slots": 1, "runs": 1}
        assert family["eliminate"] == {"wins": 0, "slots": 1, "runs": 1}

    def test_identical_runs_append_identical_bytes(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        first, second = path.read_text().splitlines()
        assert first == second

    def test_reader_tolerates_garbage_lines(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        with open(path, "a") as handle:
            handle.write("{torn mid-wri\n")
            handle.write(json.dumps({"schema": "other"}) + "\n")
            handle.write("\n")
        stats = load_stats(path)
        assert stats.records == 1
        assert stats.skipped == 2

    def test_missing_file_is_empty_history(self, tmp_path):
        stats = load_stats(tmp_path / "nope.jsonl")
        assert stats.records == 0
        assert stats.families == {}

    def test_bias_weights_are_laplace_smoothed(self):
        deck = resolve_strategies("paper,eliminate")
        weights = bias_weights(
            deck, {"paper": {"wins": 8, "runs": 10}}
        )
        assert weights == [(8 + 1) / (10 + 2), 0.5]

    def test_seeded_wins_shift_the_allocation(self, tmp_path):
        # The acceptance scenario: with no history the default deck
        # deals one slot per variant; after ten recorded eliminate
        # wins, eliminate earns extra slots at the same job count.
        path = tmp_path / "stats.jsonl"
        family = "v3:t2-3-3"
        for _ in range(10):
            record_portfolio(path, family, _summary("eliminate"))
        deck_variants = resolve_strategies("default")
        baseline = allocate_slots(len(deck_variants), 4)
        assert baseline == [0, 1, 2, 3]
        weights = bias_weights(
            deck_variants, load_stats(path).family(family)
        )
        biased = allocate_slots(len(deck_variants), 4, weights=weights)
        eliminate_index = [
            index for index, entry in enumerate(deck_variants)
            if entry.name == "eliminate"
        ][0]
        assert biased.count(eliminate_index) >= 2
        # Replaying the same stats file reproduces the same deck.
        assert allocate_slots(
            len(deck_variants), 4, weights=weights
        ) == biased


class TestStrategiesCli:
    def test_show_lists_catalog_and_decks(self, capsys):
        assert main(["strategies", "show"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "greedy", "inverse", "eliminate"):
            assert name in out
        assert "default" in out

    def test_show_json(self, capsys):
        assert main(["strategies", "show", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in report["variants"]]
        assert names == [entry.name for entry in BUILTIN_VARIANTS]
        assert report["decks"]["default"] == list(DECKS["default"])

    def test_stats_renders_family_table(self, capsys, tmp_path):
        path = tmp_path / "stats.jsonl"
        record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        assert main(["strategies", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "v3:t2-3-3" in out
        assert "paper" in out

    def test_stats_json(self, capsys, tmp_path):
        path = tmp_path / "stats.jsonl"
        record_portfolio(path, "v3:t2-3-3", _summary("paper"))
        assert main(["strategies", "stats", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["records"] == 1
        assert "v3:t2-3-3" in report["families"]


class TestSynthDirectionCli:
    def test_inverse_direction_solves_and_reports(self, capsys):
        # `_cmd_synth` itself asserts the shipped (reversed) cascade
        # implements the *forward* spec, so exit code 0 already means
        # the inverse pipeline is sound end to end.
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6",
             "--direction", "inverse", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["solved"]
        assert report["direction"] == "inverse"
        assert report["gate_count"] == 3

    def test_direction_needs_permutation(self, capsys):
        # shift28 is tabulated only as a PPRM benchmark (no image
        # table), so direction flags must refuse it, like
        # --bidirectional does.
        code = main(
            ["synth", "--benchmark", "shift28",
             "--direction", "inverse", "--max-steps", "10"]
        )
        assert code == 2

    def test_unknown_strategy_fails_fast(self, capsys):
        code = main(
            ["synth", "--spec", "1,0,7,2,3,4,5,6",
             "--strategies", "nope"]
        )
        assert code == 2
        assert "unknown strategy" in capsys.readouterr().err
