"""Tests for the transformation-based baseline (Miller et al. [7])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.transformation import (
    basic_transformation,
    bidirectional_transformation,
    transformation_synthesize,
)
from repro.functions.permutation import Permutation

perm8 = st.permutations(list(range(8)))


class TestBasic:
    def test_identity_is_empty(self):
        circuit = basic_transformation(Permutation.identity(3))
        assert circuit.gate_count() == 0

    def test_not_function(self):
        circuit = basic_transformation(Permutation([1, 0]))
        assert circuit.gate_count() == 1

    @settings(max_examples=60, deadline=None)
    @given(perm8)
    def test_always_correct(self, images):
        spec = Permutation(images)
        assert basic_transformation(spec).implements(spec)

    @given(st.permutations(list(range(16))))
    @settings(max_examples=15, deadline=None)
    def test_four_variables(self, images):
        spec = Permutation(images)
        assert basic_transformation(spec).implements(spec)

    def test_example_from_dac03(self):
        """[7]'s worked example {1,0,3,2,5,7,4,6} (= paper Example 1)."""
        spec = Permutation([1, 0, 3, 2, 5, 7, 4, 6])
        circuit = basic_transformation(spec)
        assert circuit.implements(spec)


class TestBidirectional:
    @settings(max_examples=60, deadline=None)
    @given(perm8)
    def test_always_correct(self, images):
        spec = Permutation(images)
        assert bidirectional_transformation(spec).implements(spec)

    def test_never_worse_on_average(self, rng):
        total_basic = 0
        total_bidir = 0
        for _ in range(100):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            total_basic += basic_transformation(spec).gate_count()
            total_bidir += bidirectional_transformation(spec).gate_count()
        assert total_bidir <= total_basic

    def test_input_side_repair_used(self):
        """A spec cheaper to fix from the input side must still verify."""
        # f(1) = 4 (distance 2) but f^-1(1) = 2 would be distance 1:
        spec = Permutation([0, 4, 1, 3, 2, 5, 6, 7])
        circuit = bidirectional_transformation(spec)
        assert circuit.implements(spec)


class TestOutputPermutations:
    @settings(max_examples=25, deadline=None)
    @given(perm8)
    def test_wire_relabeling_correct(self, images):
        spec = Permutation(images)
        circuit = transformation_synthesize(
            spec, try_output_permutations=True
        )
        assert circuit.implements(spec)

    def test_improves_wire_swap(self):
        """A pure wire swap is free under relabeling plus 3 CNOTs."""
        spec = Permutation([0, 2, 1, 3, 4, 6, 5, 7])
        plain = bidirectional_transformation(spec)
        relabeled = transformation_synthesize(
            spec, try_output_permutations=True
        )
        assert relabeled.implements(spec)
        assert relabeled.gate_count() <= plain.gate_count()

    def test_table1_average_in_plausible_range(self, rng):
        """Sampled average should sit near the paper's Miller column
        (6.18 with NCTS + templates; Toffoli-only lands slightly
        above)."""
        total = 0
        count = 150
        for _ in range(count):
            images = list(range(8))
            rng.shuffle(images)
            spec = Permutation(images)
            total += transformation_synthesize(
                spec, try_output_permutations=True
            ).gate_count()
        average = total / count
        assert 5.5 <= average <= 8.5
