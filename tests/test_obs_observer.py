"""Tests for the SearchObserver protocol and built-in observers."""

import pytest

from repro.functions.permutation import Permutation
from repro.obs.observer import (
    PRUNE_CHILD_DEPTH,
    PRUNE_DEPTH,
    PRUNE_GREEDY,
    PRUNE_GROWTH,
    PRUNE_LOWER_BOUND,
    MultiObserver,
    NullObserver,
    SearchObserver,
    StatsObserver,
    TraceObserver,
)
from repro.pprm.system import PPRMSystem
from repro.synth.node import SearchNode
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.synth.stats import SearchStats, TraceRecorder


def _nodes():
    system = PPRMSystem.identity(2)
    root = SearchNode.root(system, node_id=0)
    child = SearchNode(
        parent=root, target=0, factor=0b10, pprm=system,
        terms=2, elim=1, priority=1.5, node_id=1,
    )
    return root, child


class RecordingObserver(SearchObserver):
    def __init__(self):
        self.calls = []

    def on_step(self, step, node, queue_size):
        self.calls.append(("step", step, node.node_id, queue_size))

    def on_expand(self, parent):
        self.calls.append(("expand", parent.node_id))

    def on_child(self, child, parent):
        self.calls.append(
            ("child", child.node_id, None if parent is None else parent.node_id)
        )

    def on_prune(self, node, reason, count=1):
        self.calls.append(("prune", reason, count))

    def on_solution(self, node, parent):
        self.calls.append(("solution", node.node_id))

    def on_restart(self, seed, queue_size):
        self.calls.append(("restart", seed.node_id))

    def on_queue(self, size):
        self.calls.append(("queue", size))

    def on_finish(self, reason, stats):
        self.calls.append(("finish", reason))


class TestProtocol:
    def test_base_and_null_are_noops(self):
        root, child = _nodes()
        for observer in (SearchObserver(), NullObserver()):
            observer.on_step(1, root, 0)
            observer.on_expand(root)
            observer.on_child(child, root)
            observer.on_prune(child, PRUNE_DEPTH)
            observer.on_solution(child, root)
            observer.on_restart(child, 1)
            observer.on_queue(3)
            observer.on_finish("solved", SearchStats())

    def test_multi_observer_fans_out_in_order(self):
        root, child = _nodes()
        first, second = RecordingObserver(), RecordingObserver()
        multi = MultiObserver([first, second])
        multi.on_step(1, root, 2)
        multi.on_child(child, root)
        multi.on_finish("solved", SearchStats())
        assert first.calls == second.calls
        assert [call[0] for call in first.calls] == ["step", "child", "finish"]


class TestStatsObserver:
    def test_counter_mapping(self):
        root, child = _nodes()
        stats = SearchStats()
        observer = StatsObserver(stats)
        observer.on_child(root, None)
        observer.on_child(child, root)
        observer.on_step(1, root, 5)
        observer.on_expand(root)
        observer.on_solution(child, root)
        observer.on_restart(child, 1)
        assert stats.nodes_created == 2
        assert stats.steps == 1
        assert stats.nodes_expanded == 1
        assert stats.solutions_found == 1
        assert stats.restarts == 1

    @pytest.mark.parametrize(
        "reason,field",
        [
            (PRUNE_DEPTH, "nodes_pruned_depth"),
            (PRUNE_CHILD_DEPTH, "nodes_pruned_depth"),
            (PRUNE_LOWER_BOUND, "nodes_pruned_depth"),
            (PRUNE_GROWTH, "children_rejected_growth"),
            (PRUNE_GREEDY, "children_pruned_greedy"),
        ],
    )
    def test_prune_reason_mapping(self, reason, field):
        stats = SearchStats()
        StatsObserver(stats).on_prune(None, reason, 3)
        assert getattr(stats, field) == 3

    def test_peak_queue_tracks_maximum(self):
        stats = SearchStats()
        observer = StatsObserver(stats)
        for size in (2, 9, 4, 0):
            observer.on_queue(size)
        assert stats.peak_queue_size == 9

    def test_finish_sets_budget_flags(self):
        for reason, flag in (("timeout", "timed_out"),
                             ("step_limit", "step_limited")):
            stats = SearchStats()
            StatsObserver(stats).on_finish(reason, stats)
            assert getattr(stats, flag)
        stats = SearchStats()
        StatsObserver(stats).on_finish("solved", stats)
        assert not stats.timed_out and not stats.step_limited


class TestTraceObserver:
    def test_event_stream_matches_recorder_semantics(self):
        root, child = _nodes()
        trace = TraceRecorder()
        observer = TraceObserver(trace)
        observer.on_child(root, None)       # root creation: not recorded
        observer.on_step(1, root, 1)        # pop
        observer.on_child(child, root)      # create
        observer.on_prune(child, PRUNE_GROWTH)       # not recorded
        observer.on_prune(child, PRUNE_CHILD_DEPTH)  # not recorded
        observer.on_prune(child, PRUNE_DEPTH)        # recorded
        observer.on_solution(child, root)
        observer.on_restart(child, 1)
        kinds = [event.kind for event in trace.events]
        assert kinds == ["pop", "create", "prune", "solution", "restart"]


class TestSearchIntegration:
    def test_attached_observer_sees_full_run(self, fig1_spec):
        recorder = RecordingObserver()
        result = synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(recorder,)),
        )
        assert result.solved
        kinds = [call[0] for call in recorder.calls]
        assert kinds[0] == "child"          # root creation
        assert kinds[-1] == "finish"
        assert "step" in kinds and "expand" in kinds and "solution" in kinds
        steps_seen = sum(1 for call in recorder.calls if call[0] == "step")
        assert steps_seen == result.stats.steps
        children_seen = sum(1 for call in recorder.calls if call[0] == "child")
        assert children_seen == result.stats.nodes_created

    def test_external_trace_observer_matches_record_trace(self, fig1_spec):
        options = SynthesisOptions(max_steps=5_000, dedupe_states=True)
        builtin = synthesize(fig1_spec, options.with_(record_trace=True))
        external_trace = TraceRecorder()
        external = synthesize(
            fig1_spec,
            options.with_(observers=(TraceObserver(external_trace),)),
        )
        assert external.circuit == builtin.circuit
        assert external_trace.events == builtin.trace.events

    def test_finish_reason_for_identity(self):
        recorder = RecordingObserver()
        result = synthesize(
            Permutation([0, 1, 2, 3]),
            SynthesisOptions(observers=(recorder,)),
        )
        assert result.solved and result.gate_count == 0
        assert recorder.calls[-1] == ("finish", "identity")

    def test_finish_reason_step_limit(self, rng):
        images = list(range(16))
        rng.shuffle(images)
        recorder = RecordingObserver()
        result = synthesize(
            Permutation(images),
            SynthesisOptions(max_steps=3, observers=(recorder,)),
        )
        if not result.solved:
            assert recorder.calls[-1] == ("finish", "step_limit")
            assert result.stats.step_limited
