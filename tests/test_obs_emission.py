"""Tests for JSONL trace emission and periodic progress lines."""

import io
import json

from repro.obs.jsonl import (
    JSONL_SCHEMA_VERSION,
    JsonlTraceObserver,
    ProgressObserver,
)
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize


class TestJsonlTraceObserver:
    def _run(self, spec, **option_changes):
        buffer = io.StringIO()
        observer = JsonlTraceObserver(buffer)
        result = synthesize(
            spec,
            SynthesisOptions(observers=(observer,), **option_changes),
        )
        observer.close()
        return result, buffer.getvalue()

    def test_every_line_is_json(self, fig1_spec):
        result, text = self._run(fig1_spec, max_steps=5_000)
        assert result.solved
        lines = text.strip().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        for record in records:
            assert record["v"] == JSONL_SCHEMA_VERSION
            assert "event" in record and "step" in record

    def test_event_kinds_and_finish(self, fig1_spec):
        result, text = self._run(fig1_spec, max_steps=5_000)
        records = [json.loads(line) for line in text.strip().splitlines()]
        kinds = {record["event"] for record in records}
        assert {"pop", "expand", "child", "solution", "finish"} <= kinds
        finish = records[-1]
        assert finish["event"] == "finish"
        assert finish["reason"] in (
            "identity", "solved", "queue_exhausted", "timeout", "step_limit"
        )
        assert finish["stats"]["steps"] == result.stats.steps

    def test_pop_count_matches_steps(self, fig1_spec):
        result, text = self._run(fig1_spec, max_steps=5_000)
        records = [json.loads(line) for line in text.strip().splitlines()]
        pops = [record for record in records if record["event"] == "pop"]
        assert len(pops) == result.stats.steps
        assert all("node" in pop and "terms" in pop for pop in pops)

    def test_open_and_close_file(self, fig1_spec, tmp_path):
        path = tmp_path / "trace.jsonl"
        observer = JsonlTraceObserver.open(path)
        synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(observer,)),
        )
        observer.close()
        lines = path.read_text().strip().splitlines()
        assert lines
        assert json.loads(lines[-1])["event"] == "finish"

    def test_context_manager(self, fig1_spec, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceObserver.open(path) as observer:
            synthesize(
                fig1_spec,
                SynthesisOptions(max_steps=5_000, observers=(observer,)),
            )
        assert path.read_text().strip()


class TestProgressObserver:
    def test_emits_every_n_steps(self, fig1_spec):
        buffer = io.StringIO()
        observer = ProgressObserver(every=2, stream=buffer)
        result = synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(observer,)),
        )
        lines = buffer.getvalue().strip().splitlines()
        assert observer.lines_emitted == len(lines)
        assert len(lines) == result.stats.steps // 2
        assert all(line.startswith("[rmrls] step=") for line in lines)

    def test_reports_queue_and_terms(self, fig1_spec):
        buffer = io.StringIO()
        observer = ProgressObserver(every=1, stream=buffer)
        synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(observer,)),
        )
        first = buffer.getvalue().splitlines()[0]
        assert "queue=" in first and "min_terms=" in first

    def test_tracks_best_depth(self, fig1_spec):
        observer = ProgressObserver(every=10_000, stream=io.StringIO())
        result = synthesize(
            fig1_spec,
            SynthesisOptions(max_steps=5_000, observers=(observer,)),
        )
        assert result.solved
        assert observer.best_depth == result.gate_count

    def test_invalid_interval(self):
        import pytest

        with pytest.raises(ValueError):
            ProgressObserver(every=0)
