"""Metamorphic properties of synthesis under wire relabeling.

Renaming the wires of a specification conjugates it: ``q = sigma o p o
sigma^{-1}``.  Nothing about synthesis difficulty changes under that
rename, which yields free oracles no hand-written expected value can
match in coverage:

* ``p`` and any relabeling of ``p`` land in the **same canonical
  class** (identical canonical key, identical representative);
* relabeling a circuit for ``p`` yields a circuit for ``q`` with the
  **same gate count** — so best-known-per-class is well defined, which
  is the invariant the whole coverage corpus stands on;
* synthesizing both through the canonical-representative path produces
  **equal gate counts**, because both resolve to one representative;
* the **inverse** of a circuit for ``p`` simulates to ``p^{-1}``.
"""

import random

import pytest

from repro.functions.permutation import Permutation
from repro.store.canonical import (
    bit_permutation,
    canonicalize,
    relabel_circuit,
)
from repro.experiments.common import TABLE1_OPTIONS
from repro.synth.rmrls import synthesize

# Every synthesis below runs the Table I protocol (step-capped, state
# dedupe on) — the same options the coverage corpus is built with.
# Library-default options prove optimality without a dedupe table and
# can run unboundedly long even on 2-variable specs.

SAMPLES = 12


def _random_case(rng, num_vars):
    """One seeded (p, pi, q) triple with q a wire relabeling of p."""
    size = 1 << num_vars
    images = list(range(size))
    rng.shuffle(images)
    relabel = list(range(num_vars))
    rng.shuffle(relabel)
    sigma = bit_permutation(relabel)
    conjugate = [0] * size
    for x, image in enumerate(images):
        conjugate[sigma[x]] = sigma[image]
    return Permutation(images), relabel, Permutation(conjugate)


def _cases(num_vars, samples=SAMPLES):
    rng = random.Random(0x51_6A_2026 + num_vars)
    return [_random_case(rng, num_vars) for _ in range(samples)]


class TestSameCanonicalClass:
    @pytest.mark.parametrize("num_vars", [2, 3])
    def test_relabeled_spec_lands_in_same_class(self, num_vars):
        for p, relabel, q in _cases(num_vars):
            canonical_p = canonicalize(p)
            canonical_q = canonicalize(q)
            assert canonical_p.key == canonical_q.key
            assert canonical_p.images == canonical_q.images

    def test_distinct_classes_stay_distinct(self):
        # Sanity check the oracle itself: unrelated specs must not
        # collide, or "same class" would be vacuous.
        keys = {
            canonicalize(p).key
            for p, _, _ in _cases(3, samples=20)
        }
        assert len(keys) > 1


class TestEqualGateCounts:
    @pytest.mark.parametrize("num_vars", [2, 3])
    def test_relabeled_circuit_solves_conjugate_with_equal_gates(
        self, num_vars
    ):
        for p, relabel, q in _cases(num_vars, samples=6):
            result = synthesize(p, TABLE1_OPTIONS)
            assert result.solved
            assert result.circuit.implements(p)
            relabeled = relabel_circuit(result.circuit, relabel)
            assert relabeled.implements(q)
            assert relabeled.gate_count() == result.circuit.gate_count()

    def test_canonical_representative_path_gives_equal_counts(self):
        """Synthesizing p and its relabeling through the canonical
        representative (the corpus/store path) is one search: both
        specs resolve to the identical representative, so the
        per-class best-known gate count is well defined."""
        for p, relabel, q in _cases(3, samples=6):
            canonical_p = canonicalize(p)
            canonical_q = canonicalize(q)
            rep_result = synthesize(
                canonical_p.canonical_permutation(), TABLE1_OPTIONS
            )
            assert rep_result.solved
            # The representative's circuit maps back to *both* specs
            # with the same size.
            for canonical, spec in ((canonical_p, p), (canonical_q, q)):
                back = canonical.from_canonical(rep_result.circuit)
                assert back.implements(spec)
                assert back.gate_count() == rep_result.circuit.gate_count()


class TestInverseCircuit:
    @pytest.mark.parametrize("num_vars", [2, 3])
    def test_inverse_of_circuit_simulates_inverse_function(self, num_vars):
        for p, _, _ in _cases(num_vars, samples=6):
            result = synthesize(p, TABLE1_OPTIONS)
            assert result.solved
            inverse = result.circuit.inverse()
            assert inverse.implements(p.inverse())
            assert inverse.to_permutation() == p.inverse()

    def test_double_inverse_is_identity_on_the_circuit_level(self):
        for p, _, _ in _cases(3, samples=3):
            result = synthesize(p, TABLE1_OPTIONS)
            assert result.solved
            assert result.circuit.inverse().inverse().to_permutation() \
                == result.circuit.to_permutation()
