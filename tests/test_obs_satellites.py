"""Regression tests for the observability satellite fixes:

* ``SearchStats.as_dict`` derives from the dataclass fields;
* the deadline is polled on a stride without losing promptness;
* queue-size gauges see restart clears, and the peak survives them;
* ``TraceRecorder.to_dot`` edge cases (empty, truncated, solution
  beyond the node cap) render well-formed DOT.
"""

import dataclasses

import pytest

from repro.functions.permutation import Permutation
from repro.obs.observer import SearchObserver
from repro.pprm.system import PPRMSystem
from repro.synth.node import SearchNode
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.synth.stats import SearchStats, TraceRecorder


class TestStatsAsDict:
    def test_keys_match_dataclass_fields(self):
        stats = SearchStats()
        field_names = {field.name for field in dataclasses.fields(SearchStats)}
        assert set(stats.as_dict()) == field_names

    def test_values_follow_fields(self):
        stats = SearchStats(steps=7, restarts=3, timed_out=True)
        data = stats.as_dict()
        assert data["steps"] == 7
        assert data["restarts"] == 3
        assert data["timed_out"] is True


class TestDeadlinePolling:
    def _spec(self):
        return Permutation([1, 0, 7, 2, 3, 4, 5, 6])

    def test_zero_second_deadline_terminates_promptly(self):
        result = synthesize(self._spec(), SynthesisOptions(time_limit=0))
        assert not result.solved
        assert result.stats.timed_out
        # The first loop iteration checks the clock before any step.
        assert result.stats.steps == 0

    def test_zero_second_deadline_with_large_poll_stride(self):
        result = synthesize(
            self._spec(),
            SynthesisOptions(time_limit=0, deadline_poll_steps=10_000),
        )
        assert result.stats.timed_out
        assert result.stats.steps == 0

    def test_poll_stride_configurable_and_validated(self):
        assert SynthesisOptions().deadline_poll_steps == 16
        assert SynthesisOptions(deadline_poll_steps=1).deadline_poll_steps == 1
        with pytest.raises(ValueError):
            SynthesisOptions(deadline_poll_steps=0)

    def test_poll_stride_does_not_change_untimed_search(self):
        options = SynthesisOptions(max_steps=5_000, dedupe_states=True)
        a = synthesize(self._spec(), options)
        b = synthesize(self._spec(), options.with_(deadline_poll_steps=1))
        assert a.circuit == b.circuit
        assert a.stats.steps == b.stats.steps


class QueueSizeRecorder(SearchObserver):
    def __init__(self):
        self.sizes = []
        self.restart_marks = []

    def on_queue(self, size):
        self.sizes.append(size)

    def on_restart(self, seed, queue_size):
        self.restart_marks.append(len(self.sizes))


class TestPeakQueueAcrossRestarts:
    def _restarting_run(self):
        recorder = QueueSizeRecorder()
        # Gate cap below the optimum (this spec needs >= 5 gates)
        # forces restarts until the cap on restarts trips.
        result = synthesize(
            Permutation([0, 1, 2, 4, 3, 5, 6, 7]),
            SynthesisOptions(
                greedy_k=1, restart_steps=10, max_restarts=3,
                max_steps=5_000, max_gates=4, dedupe_states=True,
                observers=(recorder,),
            ),
        )
        return result, recorder

    def test_gauge_sees_restart_clears(self):
        result, recorder = self._restarting_run()
        assert result.stats.restarts > 0
        # Every restart pushes an explicit 0 (clear) then 1 (reseed).
        assert 0 in recorder.sizes
        for mark in recorder.restart_marks:
            assert recorder.sizes[mark - 2 : mark] == [0, 1]

    def test_peak_survives_restart_clears(self):
        result, recorder = self._restarting_run()
        assert result.stats.peak_queue_size == max(recorder.sizes)
        first_restart = recorder.restart_marks[0]
        peak_before_restart = max(recorder.sizes[:first_restart])
        assert result.stats.peak_queue_size >= peak_before_restart
        assert peak_before_restart > 1


def _chain(length):
    """Build root -> n1 -> n2 -> ... as create-event fodder."""
    system = PPRMSystem.identity(2)
    nodes = [SearchNode.root(system, node_id=0)]
    for index in range(1, length + 1):
        nodes.append(
            SearchNode(
                parent=nodes[-1], target=0, factor=0b10, pprm=system,
                terms=2, elim=1, priority=1.0, node_id=index,
            )
        )
    return nodes


def _declared_and_edges(dot):
    declared = set()
    edges = []
    for line in dot.splitlines():
        line = line.strip()
        if "[label=" in line:
            declared.add(line.split(" ", 1)[0])
        elif "->" in line:
            tail, head = line.rstrip(";").split(" -> ")
            edges.append((tail, head))
    return declared, edges


class TestToDotEdgeCases:
    def test_empty_trace(self):
        dot = TraceRecorder().to_dot()
        assert dot.startswith("digraph search {")
        assert dot.rstrip().endswith("}")
        declared, edges = _declared_and_edges(dot)
        assert declared == {"n0"}
        assert edges == []

    def test_truncation_at_max_nodes(self):
        recorder = TraceRecorder()
        nodes = _chain(6)
        for index in range(1, 7):
            recorder.record("create", nodes[index], nodes[index - 1])
        dot = recorder.to_dot(max_nodes=3)
        declared, edges = _declared_and_edges(dot)
        assert declared == {"n0", "n1", "n2", "n3"}
        for tail, head in edges:
            assert tail in declared and head in declared

    def test_solution_beyond_cap_has_no_dangling_edge(self):
        recorder = TraceRecorder()
        nodes = _chain(6)
        for index in range(1, 7):
            recorder.record("create", nodes[index], nodes[index - 1])
        recorder.record("solution", nodes[6], nodes[5])
        dot = recorder.to_dot(max_nodes=2)
        declared, edges = _declared_and_edges(dot)
        # The solution node's create fell past the cap; nothing may
        # reference nodes that are not drawn.
        for tail, head in edges:
            assert tail in declared and head in declared

    def test_solution_without_create_is_drawn_without_dangling_parent(self):
        recorder = TraceRecorder()
        nodes = _chain(6)
        recorder.record("create", nodes[1], nodes[0])
        # A solution event whose create was never recorded and whose
        # parent (n5) is not drawn: previously rendered `n5 -> n6`
        # against an undeclared n5.
        recorder.record("solution", nodes[6], nodes[5])
        dot = recorder.to_dot(max_nodes=10)
        declared, edges = _declared_and_edges(dot)
        assert "n6" in declared
        assert "peripheries=2" in dot
        for tail, head in edges:
            assert tail in declared and head in declared

    def test_solution_within_cap_keeps_edge(self):
        recorder = TraceRecorder()
        nodes = _chain(2)
        recorder.record("create", nodes[1], nodes[0])
        recorder.record("create", nodes[2], nodes[1])
        recorder.record("solution", nodes[2], nodes[1])
        dot = recorder.to_dot()
        declared, edges = _declared_and_edges(dot)
        assert ("n1", "n2") in edges
        assert "peripheries=2" in dot
