"""Tests for the experiment drivers (small samples; the full runs live
in benchmarks/)."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    average_size,
    bucket_histogram,
    workload_scale,
    histogram_add,
    render_histogram_comparison,
    scaled,
)
from repro.experiments.paper_data import (
    SCALABILITY_BUCKETS,
    TABLE1,
    TABLE2_SIZES,
    TABLE4,
    TABLE5,
)


class TestCommonHelpers:
    def test_histogram_add(self):
        histogram = {}
        histogram_add(histogram, 3)
        histogram_add(histogram, 3)
        histogram_add(histogram, 5)
        assert histogram == {3: 2, 5: 1}

    def test_average_size(self):
        assert average_size({2: 1, 4: 1}) == 3.0
        assert average_size({}) is None

    def test_bucket_histogram(self):
        counts = bucket_histogram({3: 2, 7: 1, 40: 5}, SCALABILITY_BUCKETS)
        assert counts[0] == 2 and counts[1] == 1 and counts[-1] == 5

    def test_experiment_result_rates(self):
        result = ExperimentResult(name="x", attempted=10, failed=3)
        assert result.solved == 7
        assert result.failure_rate() == pytest.approx(0.3)

    def test_render_comparison(self):
        text = render_histogram_comparison(
            "demo", {3: 1}, {3: 10, 4: 10}
        )
        assert "demo" in text and "50.0%" in text

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        assert workload_scale() == 2.0
        assert scaled(10) == 20

    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert workload_scale() == 1.0

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            workload_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            workload_scale()


class TestPaperData:
    def test_table1_columns_total_40320(self):
        for column, histogram in TABLE1.items():
            assert sum(histogram.values()) == 40320, column

    def test_table2_total_matches_transcription(self):
        # The paper says all 50,000 functions synthesized, but its
        # printed Table II counts sum to 49,999 — an off-by-one in the
        # original table that the transcription preserves.
        assert sum(TABLE2_SIZES.values()) == 49999

    def test_table4_rows_complete(self):
        for name, row in TABLE4.items():
            assert len(row) == 6, name

    def test_table5_sample_sizes(self):
        for variables, (buckets, failed) in TABLE5.items():
            assert sum(buckets) + failed == 500, variables


class TestTable1Driver:
    def test_small_sample(self):
        from repro.experiments.table1 import render_table1, run_table1

        results = run_table1(sample=5, include_miller=True)
        assert results["ours_nct"].solved == 5
        assert results["miller"].attempted == 5
        # Optimal sweeps are exhaustive regardless of the sample.
        assert sum(results["optimal_nct"].histogram.values()) == 40320
        text = render_table1(results)
        assert "Table I" in text and "paper avg" in text

    def test_templates_column(self):
        from repro.experiments.table1 import run_table1

        results = run_table1(
            sample=3, include_miller=False, apply_templates=True
        )
        assert "ours_nct_templates" in results
        templ = results["ours_nct_templates"].average_size()
        base = results["ours_nct"].average_size()
        assert templ <= base


class TestTable23Driver:
    def test_three_variable_smoke(self):
        from repro.experiments.table23 import run_random_functions
        from repro.synth.options import SynthesisOptions

        result = run_random_functions(
            3,
            4,
            SynthesisOptions(dedupe_states=True, max_steps=10_000),
        )
        assert result.attempted == 4
        assert result.failed == 0

    def test_render(self):
        from repro.experiments.table23 import render_table2, render_table3

        result = ExperimentResult(name="x", attempted=2)
        result.histogram = {10: 2}
        assert "Table II" in render_table2(result)
        assert "Table III" in render_table3(result)


class TestTable4Driver:
    def test_single_fast_benchmark(self):
        from repro.experiments.table4 import render_table4, run_table4
        from repro.synth.options import SynthesisOptions

        options = SynthesisOptions(
            greedy_k=3, max_steps=10_000, dedupe_states=True, max_gates=20
        )
        outcomes = run_table4(["3_17"], options, use_portfolio=False)
        assert outcomes["3_17"].solved
        assert outcomes["3_17"].gate_count <= 8
        text = render_table4(outcomes)
        assert "3_17" in text and "best [13] gates" in text


class TestScalabilityDriver:
    def test_small_run(self):
        from repro.experiments.table567 import (
            render_scalability,
            run_scalability,
        )
        from repro.synth.options import SynthesisOptions

        options = SynthesisOptions(
            greedy_k=3,
            restart_steps=1_000,
            max_steps=6_000,
            dedupe_states=True,
            stop_at_first=True,
        )
        results = run_scalability(
            5, variables=[6], samples=3, options=options
        )
        result = results[6]
        assert result.attempted == 3
        text = render_scalability(5, results)
        assert "maximum gate count 5" in text


class TestFigures:
    def test_figure1(self):
        from repro.experiments.figures import figure1_and_3d

        text = figure1_and_3d()
        assert "{1, 0, 7, 2, 3, 4, 5, 6}" in text
        assert "3 gates" in text

    def test_figure2_and_8(self):
        from repro.experiments.figures import figure2_and_8

        text = figure2_and_8()
        assert "4 gates" in text
        assert "restricts to the adder: True" in text

    def test_figure5_trace(self):
        from repro.experiments.figures import figure5_trace

        text = figure5_trace()
        assert "pop node 0" in text
        assert "solution" in text

    def test_figure6(self):
        from repro.experiments.figures import figure6_substitutions

        text = figure6_substitutions()
        assert "a = a + 1" in text
        assert "c = c + ab" in text

    def test_figure7(self):
        from repro.experiments.figures import figure7_example1

        assert "4 gates" in figure7_example1()

    def test_figure9(self):
        from repro.experiments.figures import figure9_alu

        text = figure9_alu()
        assert "A xor B" in text


class TestExamplesDriver:
    def test_all_fourteen_examples_registered(self):
        from repro.experiments.examples import EXAMPLE_BENCHMARKS

        assert len(EXAMPLE_BENCHMARKS) == 14

    def test_render_examples_table(self):
        from repro.circuits.circuit import Circuit
        from repro.experiments.examples import ExampleOutcome, render_examples

        outcomes = [
            ExampleOutcome(
                label="example2",
                circuit=Circuit.parse(3, "TOF1(a) TOF2(a, b) TOF3(b, a, c)"),
                paper_gates=3,
            ),
            ExampleOutcome(label="unsolved", circuit=None, paper_gates=9),
        ]
        text = render_examples(outcomes)
        assert "example2" in text
        assert "TOF3(a, b, c)" in text  # short cascades printed
        assert "-" in text              # unsolved renders as a dash

    def test_single_example_via_benchmark_driver(self):
        from repro.benchlib.specs import benchmark
        from repro.experiments.table4 import run_benchmark
        from repro.synth.options import SynthesisOptions

        outcome = run_benchmark(
            benchmark("example2"),
            SynthesisOptions(dedupe_states=True, max_steps=10_000),
            use_portfolio=False,
        )
        assert outcome.solved
        assert outcome.gate_count <= 3  # the paper's Example 2 count
