"""The documented public API stays importable and coherent."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_unknown_attribute(self):
        import pytest

        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_readme_quickstart(self):
        spec = repro.Permutation([1, 0, 7, 2, 3, 4, 5, 6])
        result = repro.synthesize(spec)
        assert str(result.circuit) == "TOF1(a) TOF3(a, c, b) TOF3(a, b, c)"
        assert result.circuit.implements(spec)

    def test_subpackage_alls_resolve(self):
        import repro.baselines
        import repro.benchlib
        import repro.circuits
        import repro.esop
        import repro.experiments
        import repro.functions
        import repro.gates
        import repro.io
        import repro.postprocess
        import repro.pprm
        import repro.store
        import repro.synth
        import repro.utils

        for module in (
            repro.baselines, repro.benchlib, repro.circuits, repro.esop,
            repro.experiments, repro.functions, repro.gates, repro.io,
            repro.postprocess, repro.pprm, repro.store, repro.synth,
            repro.utils,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    module.__name__, name
                )
