"""Regression-gate comparator edge cases: empty/missing baselines,
appearing and disappearing metrics, zero baselines, and deltas on
either side of the threshold."""

import pytest

from repro.perf.compare import (
    DEFAULT_THRESHOLD,
    compare_reports,
    metric_direction,
    render_comparison,
)


def report_with(metrics, sha="abc123"):
    return {
        "schema": "rmrls-bench-report",
        "version": 2,
        "workload": "quick",
        "git": {"sha": sha, "dirty": False},
        "metrics": metrics,
    }


class TestMetricDirection:
    def test_lower_is_better_suffixes(self):
        assert metric_direction("kernel_x_ns_per_op") == "lower"
        assert metric_direction("workload_y_seconds") == "lower"
        assert metric_direction("workload_y_ns_per_substitution") == "lower"

    def test_higher_is_better_suffixes(self):
        assert metric_direction("workload_y_steps_per_s") == "higher"

    def test_counters_are_informational(self):
        assert metric_direction("hotop_queue_pops") is None
        assert metric_direction("bench_gate_count") is None


class TestMissingBaseline:
    def test_none_baseline_never_regresses(self):
        comparison = compare_reports(report_with({"a_seconds": 1.0}), None)
        assert not comparison.baseline_found
        assert not comparison.has_regressions
        assert comparison.deltas == []

    def test_render_mentions_missing_baseline(self):
        comparison = compare_reports(report_with({"a_seconds": 1.0}), None)
        assert "no baseline" in render_comparison(comparison).lower()


class TestEmptyBaseline:
    def test_empty_metrics_all_new(self):
        comparison = compare_reports(
            report_with({"a_seconds": 1.0, "b_per_s": 5.0}),
            report_with({}),
        )
        assert not comparison.has_regressions
        assert {d.status for d in comparison.deltas} == {"new"}

    def test_baseline_without_metrics_key(self):
        baseline = report_with({})
        del baseline["metrics"]
        comparison = compare_reports(
            report_with({"a_seconds": 1.0}), baseline
        )
        assert [d.status for d in comparison.deltas] == ["new"]


class TestAsymmetricMetrics:
    def test_new_metric_reported_not_gated(self):
        comparison = compare_reports(
            report_with({"a_seconds": 1.0, "fresh_seconds": 9.0}),
            report_with({"a_seconds": 1.0}),
        )
        (new,) = comparison.by_status("new")
        assert new.name == "fresh_seconds"
        assert new.current == 9.0 and new.baseline is None
        assert not comparison.has_regressions

    def test_disappearing_metric_reported_not_gated(self):
        comparison = compare_reports(
            report_with({"a_seconds": 1.0}),
            report_with({"a_seconds": 1.0, "gone_seconds": 2.0}),
        )
        (missing,) = comparison.by_status("missing")
        assert missing.name == "gone_seconds"
        assert missing.baseline == 2.0 and missing.current is None
        assert not comparison.has_regressions


class TestZeroBaseline:
    def test_zero_baseline_is_informational(self):
        comparison = compare_reports(
            report_with({"a_seconds": 5.0}),
            report_with({"a_seconds": 0.0}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "info"
        assert delta.ratio is None
        assert not comparison.has_regressions


class TestThreshold:
    def test_inside_threshold_is_ok(self):
        comparison = compare_reports(
            report_with({"a_seconds": 1.25}),
            report_with({"a_seconds": 1.0}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "ok"
        assert delta.change == pytest.approx(0.25)

    def test_past_threshold_regresses(self):
        comparison = compare_reports(
            report_with({"a_seconds": 2.0}),
            report_with({"a_seconds": 1.0}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "regression"
        assert delta.change == pytest.approx(1.0)
        assert comparison.has_regressions

    def test_rate_metric_regresses_downward(self):
        # A halved rate is a 2x slowdown and must score +1.0, the same
        # as a doubled timing — not the naive 1 - ratio = +0.5.
        comparison = compare_reports(
            report_with({"a_per_s": 50.0}),
            report_with({"a_per_s": 100.0}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "regression"
        assert delta.change == pytest.approx(1.0)

    def test_rate_metric_zero_current_is_info(self):
        comparison = compare_reports(
            report_with({"a_per_s": 0.0}),
            report_with({"a_per_s": 100.0}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "info"

    def test_improvement_flagged_symmetric(self):
        comparison = compare_reports(
            report_with({"a_seconds": 0.5}),
            report_with({"a_seconds": 1.0}),
        )
        assert [d.status for d in comparison.deltas] == ["improvement"]
        assert not comparison.has_regressions

    def test_custom_threshold(self):
        current = report_with({"a_seconds": 1.25})
        baseline = report_with({"a_seconds": 1.0})
        assert not compare_reports(current, baseline).has_regressions
        assert compare_reports(
            current, baseline, threshold=0.10
        ).has_regressions

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(
                report_with({}), report_with({}), threshold=-0.1
            )

    def test_counter_drift_never_gates(self):
        comparison = compare_reports(
            report_with({"hotop_queue_pops": 10_000}),
            report_with({"hotop_queue_pops": 10}),
        )
        (delta,) = comparison.deltas
        assert delta.status == "info"
        assert not comparison.has_regressions


class TestRendering:
    def test_render_carries_shas_and_verdict(self):
        comparison = compare_reports(
            report_with({"a_seconds": 2.0}, sha="feedface"),
            report_with({"a_seconds": 1.0}, sha="deadbeef"),
        )
        text = render_comparison(comparison)
        assert "deadbeef" in text
        assert "REGRESSION" in text
        assert "a_seconds" in text

    def test_quiet_render_on_identical_reports(self):
        report = report_with({"a_seconds": 1.0, "hotop_x": 5})
        comparison = compare_reports(report, report)
        assert not comparison.has_regressions
        assert "no regressions" in render_comparison(comparison).lower()

    def test_as_dict_serializable(self):
        import json

        comparison = compare_reports(
            report_with({"a_seconds": 2.0}),
            report_with({"a_seconds": 1.0}),
        )
        data = comparison.as_dict()
        json.dumps(data)
        assert data["has_regressions"] is True
        assert data["threshold"] == DEFAULT_THRESHOLD
