"""Sec. V-C worked examples — the paper prints explicit cascades.

Paper gate counts: Example 1: 4, Example 2: 3, Fredkin: 3, Example 4:
6, Example 5: 7, Example 6: 3, Example 7: 4, adder: 4.  The bench
synthesizes the quick examples and requires matching-or-better counts.
"""

from __future__ import annotations

from repro.benchlib.specs import benchmark
from repro.experiments.paper_data import EXAMPLE_GATE_COUNTS
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table

QUICK = [
    "fig1", "example1", "example2", "fredkin", "example4",
    "example6", "example7", "adder", "decod24",
]

OPTIONS = SynthesisOptions(dedupe_states=True, max_steps=30_000, max_gates=60)


def bench_examples(once):
    def run_all():
        outcomes = {}
        for name in QUICK:
            spec = benchmark(name)
            result = synthesize(spec.pprm(), OPTIONS)
            if result.circuit is not None:
                assert spec.verify(result.circuit), name
            outcomes[name] = result
        return outcomes

    outcomes = once(run_all)

    rows = []
    for name, result in outcomes.items():
        rows.append(
            (name, result.gate_count, EXAMPLE_GATE_COUNTS.get(name))
        )
    print()
    print(format_table(
        ["example", "our gates", "paper gates"], rows,
        title="Sec. V-C examples",
    ))

    for name in ("fig1", "example1", "example2", "fredkin", "example6",
                 "example7", "adder"):
        result = outcomes[name]
        assert result.solved, name
        assert result.gate_count <= EXAMPLE_GATE_COUNTS.get(name, 99), name

    # Example 4: the paper prints 6 gates (erroneous circuit, see
    # tests/test_paper_facts.py); ours must be correct and no longer.
    assert outcomes["example4"].gate_count <= 6
