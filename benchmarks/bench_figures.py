"""Figures 1-9 — regenerate every figure's content and check its facts.

Fig. 1/3(d): the running example and its 3-gate circuit; Fig. 2/8: the
adder embedding and 4-gate circuit; Fig. 5/6: the search trace and the
extended substitution set; Fig. 7: Example 1's 4-gate cascade; Fig. 9:
the alu table.
"""

from __future__ import annotations

from repro.experiments import figures


def bench_figures(once):
    def regenerate():
        return {
            "fig1_3d": figures.figure1_and_3d(),
            "fig2_8": figures.figure2_and_8(),
            "fig5": figures.figure5_trace(),
            "fig6": figures.figure6_substitutions(),
            "fig7": figures.figure7_example1(),
            "fig9": figures.figure9_alu(),
        }

    rendered = once(regenerate)
    for name, text in rendered.items():
        print()
        print(text)
        print("-" * 72)

    # Fig. 1 / 3(d): equation (3) and the 3-gate realization.
    assert "b + ab + ac" in rendered["fig1_3d"]
    assert "3 gates" in rendered["fig1_3d"]

    # Fig. 2 / 8: one garbage output, one constant input, 4 gates.
    assert "1 garbage output(s), 1 constant input(s), 4 lines" in (
        rendered["fig2_8"]
    )
    assert "4 gates" in rendered["fig2_8"]

    # Fig. 5: the trace starts by popping the root and finds depth 3.
    assert "pop node 0" in rendered["fig5"]
    assert "depth 3" in rendered["fig5"]

    # Fig. 6: exactly the substitutions the paper lists.
    for substitution in ("a = a + 1", "b = b + c", "b = b + ac",
                         "c = c + b", "c = c + ab", "b = b + 1",
                         "c = c + 1"):
        assert substitution in rendered["fig6"]

    # Fig. 7: four gates for Example 1.
    assert "4 gates" in rendered["fig7"]

    # Fig. 9: all eight alu rows.
    assert rendered["fig9"].count("|") >= 9
