"""Ablation — template post-processing (the paper's 6.10 -> 6.05 note).

Sec. V-A reports that template simplification [21] improved the Table I
average from 6.10 to 6.05.  This bench measures the same effect with
this library's template/peephole simplifier on a three-variable sample,
and the (larger) effect on four-variable greedy output, where junk
pairs are more common.
"""

from __future__ import annotations

import random

from repro.experiments.common import scaled
from repro.functions.permutation import random_permutation
from repro.postprocess.templates import simplify
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table


def bench_ablation_templates(once):
    def run():
        rng = random.Random(53)
        rows = []
        measured = {}
        for label, num_vars, options in (
            (
                "3-var basic",
                3,
                SynthesisOptions(dedupe_states=True, max_steps=8_000),
            ),
            (
                "4-var greedy",
                4,
                SynthesisOptions(
                    dedupe_states=True, max_steps=10_000, greedy_k=3,
                    restart_steps=2_000, max_gates=40,
                ),
            ),
        ):
            raw_total = 0
            simplified_total = 0
            solved = 0
            for _ in range(scaled(12)):
                spec = random_permutation(num_vars, rng)
                result = synthesize(spec, options)
                if not result.solved:
                    continue
                solved += 1
                raw_total += result.gate_count
                reduced = simplify(result.circuit)
                assert reduced.implements(spec)
                simplified_total += reduced.gate_count()
            raw_average = raw_total / solved if solved else None
            simplified_average = (
                simplified_total / solved if solved else None
            )
            rows.append((label, solved, raw_average, simplified_average))
            measured[label] = (raw_total, simplified_total)
        print()
        print(format_table(
            ["sample", "solved", "avg raw", "avg simplified"], rows,
            title="Ablation: template post-processing",
        ))
        return measured

    measured = once(run)
    for label, (raw_total, simplified_total) in measured.items():
        # Templates never lengthen a circuit (paper: they shorten the
        # average slightly).
        assert simplified_total <= raw_total, label
