"""Cross-method comparison: every synthesizer in the repository.

Table I's columns come from four different methods; this bench runs all
of them (RMRLS, transformation-based [7], spectral [18], optimal BFS
[16], and the naive one-gate-per-term strawman of Sec. I) on one
three-variable sample and reports solve rate and average size — the
paper's "who wins" ordering in a single table.
"""

from __future__ import annotations

import random

from repro.baselines.optimal import optimal_synthesize
from repro.baselines.spectral_synthesis import spectral_synthesize
from repro.baselines.transformation import transformation_synthesize
from repro.experiments.common import scaled
from repro.functions.permutation import random_permutation
from repro.synth.naive import naive_synthesize
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table

RMRLS_OPTIONS = SynthesisOptions(dedupe_states=True, max_steps=20_000)


def bench_baselines(once):
    def run():
        rng = random.Random(2004)
        specs = [random_permutation(3, rng) for _ in range(scaled(25))]
        stats = {}

        def record(label, circuit):
            solved, gates = stats.get(label, (0, 0))
            if circuit is not None:
                stats[label] = (solved + 1, gates + circuit.gate_count())
            else:
                stats[label] = (solved, gates)

        for spec in specs:
            result = synthesize(spec, RMRLS_OPTIONS)
            assert result.solved and result.verify(spec)
            record("RMRLS (this paper)", result.circuit)

            circuit = transformation_synthesize(
                spec, try_output_permutations=True
            )
            assert circuit.implements(spec)
            record("transformation-based [7]", circuit)

            outcome = spectral_synthesize(spec)
            if outcome.solved:
                assert outcome.circuit.implements(spec)
            record("spectral [18]", outcome.circuit)

            circuit = naive_synthesize(spec.to_pprm())
            record("naive (Sec. I strawman)", circuit)

            circuit = optimal_synthesize(spec, max_gates=9)
            assert circuit is not None and circuit.implements(spec)
            record("optimal BFS [16]", circuit)

        rows = []
        averages = {}
        for label, (solved, gates) in stats.items():
            average = gates / solved if solved else None
            averages[label] = (solved, average)
            rows.append((label, f"{solved}/{len(specs)}", average))
        print()
        print(format_table(
            ["method", "solved", "avg gates"], rows,
            title="Cross-method comparison (3-variable sample)",
        ))
        return averages

    averages = once(run)
    total = scaled(25)

    rmrls_solved, rmrls_avg = averages["RMRLS (this paper)"]
    optimal_solved, optimal_avg = averages["optimal BFS [16]"]
    assert rmrls_solved == optimal_solved == total
    # The paper's ordering: optimal <= RMRLS <= transformation-based.
    transform_avg = averages["transformation-based [7]"][1]
    assert optimal_avg <= rmrls_avg <= transform_avg + 0.5
    # The naive method rarely solves anything (Sec. I's point).
    assert averages["naive (Sec. I strawman)"][0] <= total // 5
    # Spectral greedy solves some but not all (its declared errors).
    spectral_solved = averages["spectral [18]"][0]
    assert 0 < spectral_solved <= total
