"""Ablation — the Sec. IV-E heuristics: greedy width and restarts.

Compares greedy k in {1, 3, 5} and no-greedy on a four-variable sample
(where the heuristics matter; on three variables the basic algorithm
wins outright), plus the restart heuristic on/off at k=1, and the
reproduction's lower-bound pruning on/off.
"""

from __future__ import annotations

import random

from repro.experiments.common import scaled
from repro.functions.permutation import random_permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table

BASE = SynthesisOptions(
    dedupe_states=True, max_steps=12_000, max_gates=40, restart_steps=2_000
)

CONFIGS = {
    "greedy k=1": BASE.with_(greedy_k=1),
    "greedy k=3": BASE.with_(greedy_k=3),
    "greedy k=5": BASE.with_(greedy_k=5),
    "no greedy": BASE.with_(restart_steps=None),
    "k=1, no restarts": BASE.with_(greedy_k=1, restart_steps=None),
    "k=3, no lower bound": BASE.with_(
        greedy_k=3, lower_bound_pruning=False
    ),
}


def bench_ablation_pruning(once):
    def run():
        rng = random.Random(47)
        specs = [random_permutation(4, rng) for _ in range(scaled(6))]
        rows = []
        measured = {}
        for label, options in CONFIGS.items():
            solved = 0
            gates = 0
            restarts = 0
            for spec in specs:
                result = synthesize(spec, options)
                restarts += result.stats.restarts
                if result.solved:
                    assert result.verify(spec)
                    solved += 1
                    gates += result.gate_count
            rows.append(
                (label, f"{solved}/{len(specs)}",
                 gates / solved if solved else None, restarts)
            )
            measured[label] = solved
        print()
        print(format_table(
            ["configuration", "solved", "avg gates", "restarts"], rows,
            title="Ablation: Sec. IV-E heuristics (4-variable sample)",
        ))
        return measured

    measured = once(run)
    # The greedy option is what makes 4 variables tractable at this
    # budget (the paper enables it for every 4+-variable experiment).
    best_greedy = max(
        measured["greedy k=1"], measured["greedy k=3"], measured["greedy k=5"]
    )
    assert best_greedy >= measured["no greedy"]
    assert best_greedy >= 1
