"""Table II — random four-variable reversible functions.

Paper: 50 000 random functions, 60 s budget, max 40 gates, greedy
pruning; all synthesized, sizes 2-19 peaking at 10.  The bench keeps
the protocol at a sampled scale; the pure-Python step budget yields
larger circuits than the paper's 60 CPU-seconds of 2004 C code, so the
shape assertions target solve rate and distribution bounds.
"""

from __future__ import annotations

from repro.experiments.common import scaled
from repro.experiments.table23 import render_table2, run_random_functions


def bench_table2(once):
    result = once(run_random_functions, 4, scaled(6), seed=2004)
    print()
    print(render_table2(result))

    # Paper: all four-variable functions synthesized.
    assert result.failure_rate() <= 0.25
    if result.histogram:
        sizes = sorted(result.histogram)
        # All results respect the protocol's 40-gate cap.
        assert sizes[-1] <= 40
        # Nontrivial sharing: far below the ~31-term naive bound.
        assert result.average_size() <= 34
