"""Table I — gate-count distribution over three-variable functions.

Paper: RMRLS synthesizes all 40 320 functions with average size 6.10
(optimal NCT: 5.87, optimal NCTS: 5.63, Miller [7]: 6.18).  The bench
samples the RMRLS/Miller columns (``REPRO_BENCH_SCALE`` scales the
sample; the paper-sized run is ``rmrls table1 --full``) and reproduces
both optimal columns exactly.
"""

from __future__ import annotations

from repro.experiments.common import scaled
from repro.experiments.paper_data import TABLE1, TABLE1_AVERAGES
from repro.experiments.table1 import render_table1, run_table1


def bench_table1(once):
    results = once(run_table1, sample=scaled(60), seed=2004)
    print()
    print(render_table1(results))

    ours = results["ours_nct"]
    assert ours.failed == 0, "every three-variable function must synthesize"
    average = ours.average_size()
    # Shape check: near the paper's 6.10, never under the optimum.
    assert 5.5 <= average <= 6.9
    assert average >= 5.0

    miller = results["miller"]
    assert miller.failed == 0
    # The transformation baseline lands near its published 6.18 average
    # (ours lacks SWAP gates and templates, so allow headroom).
    assert 5.5 <= miller.average_size() <= 8.5

    # The optimal columns are exact reproductions of the paper.
    assert results["optimal_nct"].histogram == TABLE1["optimal_nct"]
    assert results["optimal_ncts"].histogram == TABLE1["optimal_ncts"]

    # Who-wins ordering from the paper's bottom row:
    # optimal NCTS < optimal NCT < ours.
    optimal_ncts = results["optimal_ncts"].average_size()
    optimal_nct = results["optimal_nct"].average_size()
    assert optimal_ncts < optimal_nct < average
    assert abs(optimal_nct - TABLE1_AVERAGES["optimal_nct"]) < 0.01
    assert abs(optimal_ncts - TABLE1_AVERAGES["optimal_ncts"]) < 0.01
