"""Ablation — the priority weights of equation (4).

The paper fixed (alpha, beta, gamma) = (0.3, 0.6, 0.1) "after careful
experimentation".  This bench compares that setting against pure
depth-first (alpha only), pure elimination-greedy (beta only), and a
literal-count-blind variant, on a fixed sample of three-variable
functions, reporting solve rate, average size, and search effort.
"""

from __future__ import annotations

import random

from repro.experiments.common import scaled
from repro.functions.permutation import random_permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table

WEIGHTS = {
    "paper (0.3, 0.6, 0.1)": (0.3, 0.6, 0.1),
    "depth only (1, 0, 0)": (1.0, 0.0, 0.0),
    "elim only (0, 1, 0)": (0.0, 1.0, 0.0),
    "no literal penalty (0.33, 0.67, 0)": (0.33, 0.67, 0.0),
}

BASE = SynthesisOptions(dedupe_states=True, max_steps=8_000)


def bench_ablation_priority(once):
    def run():
        rng = random.Random(41)
        specs = [random_permutation(3, rng) for _ in range(scaled(25))]
        rows = []
        measured = {}
        for label, (alpha, beta, gamma) in WEIGHTS.items():
            options = BASE.with_(alpha=alpha, beta=beta, gamma=gamma)
            solved = 0
            gates = 0
            steps = 0
            for spec in specs:
                result = synthesize(spec, options)
                steps += result.stats.steps
                if result.solved:
                    assert result.verify(spec)
                    solved += 1
                    gates += result.gate_count
            average = gates / solved if solved else None
            rows.append((label, f"{solved}/{len(specs)}", average,
                         steps // len(specs)))
            measured[label] = (solved, average)
        print()
        print(format_table(
            ["weights", "solved", "avg gates", "avg steps"], rows,
            title="Ablation: priority weights (3-variable sample)",
        ))
        return measured

    measured = once(run)
    paper_solved, paper_average = measured["paper (0.3, 0.6, 0.1)"]
    assert paper_solved == scaled(25)
    assert paper_average is not None and paper_average < 7.5
