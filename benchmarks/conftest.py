"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures at a
sampled scale (scale with ``REPRO_BENCH_SCALE``, e.g. ``=5`` for a 5x
larger run; the paper-sized runs are documented in EXPERIMENTS.md).
The rendered paper-vs-measured tables print to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see them (a plain run
captures and discards passing tests' prints; the committed results/
directory and EXPERIMENTS.md keep representative renders).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The drivers take minutes, so the usual multi-round calibration is
    disabled.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
