"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures at a
sampled scale (scale with ``REPRO_BENCH_SCALE``, e.g. ``=5`` for a 5x
larger run; the paper-sized runs are documented in EXPERIMENTS.md).
The rendered paper-vs-measured tables print to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see them (a plain run
captures and discards passing tests' prints; the committed results/
directory and EXPERIMENTS.md keep representative renders).

Set ``RMRLS_METRICS_DIR=/some/dir`` to drop one machine-readable
``rmrls-bench-report`` JSON per bench run alongside the committed
results — wall-clock, git commit, hot-op counter totals, scale, and
environment info (see docs/benchmarking.md for the schema) — so table
regenerations can be diffed across commits instead of eyeballed.
"""

from __future__ import annotations

import os
import time

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The drivers take minutes, so the usual multi-round calibration is
    disabled.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark, request):
    """Fixture wrapper around :func:`run_once`.

    When ``RMRLS_METRICS_DIR`` is set, each run additionally writes a
    per-run bench report named after the bench node id, via the same
    writer and schema as ``rmrls bench`` (repro.perf.report).  The
    hot-op section is the delta of the process-global counters across
    the run, attributing the wall-clock to search work.
    """

    def runner(function, *args, **kwargs):
        from repro.perf import snapshot_global, write_pytest_bench_report

        before = snapshot_global()
        start = time.perf_counter()
        result = run_once(benchmark, function, *args, **kwargs)
        elapsed = time.perf_counter() - start
        directory = os.environ.get("RMRLS_METRICS_DIR")
        if directory:
            write_pytest_bench_report(
                directory,
                request.node.nodeid,
                elapsed,
                hot_ops=snapshot_global().diff(before).as_dict(),
                scale=os.environ.get("REPRO_BENCH_SCALE"),
            )
        return result

    return runner
