"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures at a
sampled scale (scale with ``REPRO_BENCH_SCALE``, e.g. ``=5`` for a 5x
larger run; the paper-sized runs are documented in EXPERIMENTS.md).
The rendered paper-vs-measured tables print to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see them (a plain run
captures and discards passing tests' prints; the committed results/
directory and EXPERIMENTS.md keep representative renders).

Set ``RMRLS_METRICS_DIR=/some/dir`` to drop one machine-readable JSON
report per bench run alongside the committed results — wall-clock,
scale, and environment info in the run-report layout of
``docs/observability.md`` — so table regenerations can be diffed
across commits instead of eyeballed.
"""

from __future__ import annotations

import json
import os
import re
import time

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The drivers take minutes, so the usual multi-round calibration is
    disabled.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def _write_bench_report(directory: str, nodeid: str, seconds: float) -> None:
    """Drop one JSON report for this bench run into ``directory``."""
    from repro.obs.report import environment_info

    os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid).strip("_")
    path = os.path.join(directory, f"{slug}.json")
    report = {
        "schema": "rmrls-bench-report",
        "version": 1,
        "generated_unix": time.time(),
        "bench": nodeid,
        "seconds": seconds,
        "scale": os.environ.get("REPRO_BENCH_SCALE"),
        "environment": environment_info(),
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


@pytest.fixture
def once(benchmark, request):
    """Fixture wrapper around :func:`run_once`.

    When ``RMRLS_METRICS_DIR`` is set, each run additionally writes a
    per-run JSON report named after the bench node id.
    """

    def runner(function, *args, **kwargs):
        start = time.perf_counter()
        result = run_once(benchmark, function, *args, **kwargs)
        elapsed = time.perf_counter() - start
        directory = os.environ.get("RMRLS_METRICS_DIR")
        if directory:
            _write_bench_report(directory, request.node.nodeid, elapsed)
        return result

    return runner
