"""Table V — random circuits with maximum gate count 15, 6-16 variables.

Paper: 500 samples per variable count; failure rates 0-4.6%, realized
sizes concentrated in the 1-15 buckets.  The bench samples a subset of
variable counts (full sweep: ``rmrls scalability --max-gates 15``).
"""

from __future__ import annotations

from repro.experiments.common import scaled
from repro.experiments.table567 import render_scalability, run_scalability

VARIABLES = [6, 8, 10]


def bench_table5(once):
    results = once(
        run_scalability, 15, variables=VARIABLES, samples=scaled(4),
        seed=2004,
    )
    print()
    print(render_scalability(15, results))

    total = 0
    solved = 0
    for num_vars, result in results.items():
        assert result.attempted == scaled(4)
        total += result.attempted
        solved += result.solved
        for size in result.histogram:
            # The driver accepts solutions up to its 45-gate cap.
            assert size <= 45
    # Table V's worst failure rate is 4.6%; the Python step budget (a
    # small fraction of the paper's 60 CPU-seconds of 2004 C code)
    # fails more often — the rendered table reports the honest rates,
    # and the assertion only guards against total collapse across the
    # sweep.
    assert solved >= 1, "no random circuit synthesized at any width" 
