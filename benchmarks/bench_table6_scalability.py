"""Table VI — random circuits with maximum gate count 20, 6-16 variables.

Paper: 1 000 samples per variable count; failure rates grow from 0.1%
(6 vars) to ~16% (15-16 vars) — harder than Table V's 15-gate setting.
"""

from __future__ import annotations

from repro.experiments.common import scaled
from repro.experiments.table567 import render_scalability, run_scalability

VARIABLES = [6, 8, 10]


def bench_table6(once):
    results = once(
        run_scalability, 20, variables=VARIABLES, samples=scaled(4),
        seed=2004,
    )
    print()
    print(render_scalability(20, results))

    total_failed = sum(result.failed for result in results.values())
    total = sum(result.attempted for result in results.values())
    assert total == len(VARIABLES) * scaled(4)
    # The paper's aggregate failure rate at 20 gates is ~8%; the
    # reduced step budget fails more often — guard against total
    # collapse only.
    assert total_failed < total, "no random circuit synthesized" 
