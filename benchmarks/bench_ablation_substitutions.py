"""Ablation — the Sec. IV-D extended substitutions and the growth rules.

Compares four rule sets on the same three-variable sample:

* ``basic``      — Sec. IV-A only (no extended, no complement);
* ``paper``      — Sec. IV-D as written (complement exempt only);
* ``default``    — this reproduction's linear growth exemption;
* ``default+stuck`` — plus growth-when-stuck (the shipped default).

The measured point the bench pins: the paper-literal rules cannot solve
every function (wire swaps are unreachable), while the default rules
solve the entire sample — the completeness deviation DESIGN.md
documents.
"""

from __future__ import annotations

import random

from repro.experiments.common import scaled
from repro.functions.permutation import Permutation, random_permutation
from repro.synth.options import SynthesisOptions
from repro.synth.rmrls import synthesize
from repro.utils.tables import format_table

BASE = SynthesisOptions(dedupe_states=True, max_steps=8_000)

RULES = {
    "basic (Sec. IV-A)": BASE.with_(
        extended_substitutions=False,
        complement_substitutions=False,
        growth_exempt_literals=-1,
        growth_when_stuck=False,
    ),
    "paper (Sec. IV-D literal)": BASE.with_(
        growth_exempt_literals=0, growth_when_stuck=False
    ),
    "linear exemption": BASE.with_(growth_when_stuck=False),
    "linear + when-stuck (default)": BASE,
}


def bench_ablation_substitutions(once):
    def run():
        rng = random.Random(43)
        specs = [random_permutation(3, rng) for _ in range(scaled(20))]
        specs.append(Permutation([0, 2, 1, 3, 4, 6, 5, 7]))  # wire swap
        rows = []
        measured = {}
        for label, options in RULES.items():
            solved = 0
            gates = 0
            swap_solved = False
            for index, spec in enumerate(specs):
                result = synthesize(spec, options)
                if result.solved:
                    assert result.verify(spec)
                    solved += 1
                    gates += result.gate_count
                    if index == len(specs) - 1:
                        swap_solved = True
            rows.append(
                (label, f"{solved}/{len(specs)}",
                 gates / solved if solved else None,
                 "yes" if swap_solved else "no")
            )
            measured[label] = (solved, swap_solved)
        print()
        print(format_table(
            ["rule set", "solved", "avg gates", "wire swap?"], rows,
            title="Ablation: substitution rules (3-variable sample)",
        ))
        return measured

    measured = once(run)
    total = scaled(20) + 1
    assert measured["linear + when-stuck (default)"][0] == total
    assert measured["linear + when-stuck (default)"][1] is True
    # The paper-literal rules provably miss the wire swap.
    assert measured["paper (Sec. IV-D literal)"][1] is False
    assert measured["basic (Sec. IV-A)"][1] is False
