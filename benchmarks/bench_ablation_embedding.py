"""Ablation — don't-care preassignment (Sec. II-E / Sec. VI future work).

The paper preassigns don't-care values before synthesis and calls
choosing them well "a challenging and open problem".  This bench
quantifies how much the choice matters on the paper's own augmented
full-adder (Figs. 2/8) and on the majority predicate: the embedding
strategy portfolio spans an order of magnitude in gate count, and the
Fig. 2(b)-style xor-block strategy recovers the paper's 4-gate adder.
"""

from __future__ import annotations

from repro.functions.dontcare import synthesize_with_dont_cares
from repro.functions.truth_table import TruthTable
from repro.synth.options import SynthesisOptions
from repro.utils.tables import format_table

OPTIONS = SynthesisOptions(dedupe_states=True, max_steps=25_000)


def _full_adder() -> TruthTable:
    def row(m):
        a, b, c = m & 1, m >> 1 & 1, m >> 2 & 1
        carry = 1 if a + b + c >= 2 else 0
        return (carry << 2) | (((a + b + c) & 1) << 1) | (a ^ b)

    return TruthTable.from_function(3, 3, row)


def _majority5() -> TruthTable:
    return TruthTable.from_function(
        5, 1, lambda m: 1 if bin(m).count("1") >= 3 else 0
    )


def bench_ablation_embedding(once):
    def run():
        outcomes = {}
        for label, table in (
            ("full adder (Figs. 2/8)", _full_adder()),
            ("majority5 (Example 10)", _majority5()),
        ):
            outcomes[label] = synthesize_with_dont_cares(table, OPTIONS)
        return outcomes

    outcomes = once(run)

    rows = []
    for label, result in outcomes.items():
        for name, gates in result.attempts:
            rows.append((label, name, gates))
        rows.append((label, "-> best", result.circuit.gate_count()
                     if result.solved else None))
    print()
    print(format_table(
        ["workload", "embedding strategy", "gates"], rows,
        title="Ablation: don't-care preassignment",
    ))

    adder = outcomes["full adder (Figs. 2/8)"]
    assert adder.solved
    # The portfolio must recover the paper's 4-gate realization.
    assert adder.circuit.gate_count() == 4
    # And the spread across strategies is what makes the point: the
    # worst strategy is at least twice the best.
    solved_counts = [g for _n, g in adder.attempts if g is not None]
    assert max(solved_counts) >= 2 * min(solved_counts)

    majority = outcomes["majority5 (Example 10)"]
    assert majority.solved
