"""Table III — random five-variable reversible functions.

Paper: 3 000 random functions, 180 s budget, max 60 gates, greedy
pruning; 6.5% failed, sizes 28-51 peaking around 38.  The bench keeps
the protocol at a sampled scale and asserts the qualitative shape:
five variables are markedly harder than four (nonzero failures are
expected), and every found circuit respects the 60-gate cap.
"""

from __future__ import annotations

from repro.experiments.common import TABLE3_OPTIONS, scaled
from repro.experiments.table23 import render_table3, run_random_functions


def bench_table3(once):
    result = once(
        run_random_functions, 5, scaled(3), TABLE3_OPTIONS, seed=2004
    )
    print()
    print(render_table3(result))

    assert result.attempted == scaled(3)
    if result.histogram:
        assert max(result.histogram) <= 60
    # At this budget some failures are expected (the paper itself
    # failed 6.5% at 180 s); just require the driver measured them.
    assert 0 <= result.failed <= result.attempted
