"""Table VII — random circuits with maximum gate count 25, 6-16 variables.

Paper: 1 000 samples per variable count; the hardest setting, with
failure rates up to 45.2% (15 vars) yet "more than half" synthesizing
overall.  The bench additionally checks the crossover the three
scalability tables establish: failures grow with the gate cap.
"""

from __future__ import annotations

from repro.experiments.common import SCALABILITY_OPTIONS, scaled
from repro.experiments.table567 import render_scalability, run_scalability

VARIABLES = [6, 8]


def bench_table7(once):
    def run_both():
        easy = run_scalability(
            15, variables=VARIABLES, samples=scaled(4), seed=77,
        )
        hard = run_scalability(
            25, variables=VARIABLES, samples=scaled(4), seed=77,
        )
        return easy, hard

    easy, hard = once(run_both)
    print()
    print(render_scalability(25, hard))

    total = len(VARIABLES) * scaled(4)
    easy_failed = sum(result.failed for result in easy.values())
    hard_failed = sum(result.failed for result in hard.values())
    # The paper's shape: the 25-gate setting fails at least as often
    # as the 15-gate setting (Table VII vs Table V); one function of
    # slack absorbs small-sample noise.
    assert hard_failed >= easy_failed - 1
    # "It is comforting to see that the algorithm can still quickly
    # synthesize more than half of the circuits" — the paper's claim at
    # its budget; at ours the rendered table reports the honest rates
    # and the assertions above pin the monotone trend.
