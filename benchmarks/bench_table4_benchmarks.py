"""Table IV — named benchmark functions vs the best published results.

Paper: 29 benchmarks at 60 s each with greedy pruning; results on par
with [13] (identical on several, trade-offs elsewhere, two strictly
worse).  The default bench runs a representative subset quickly (no
option portfolio); ``rmrls table4`` runs the portfolio, and
EXPERIMENTS.md records the full-suite outcome.
"""

from __future__ import annotations

import os

from repro.experiments.common import workload_scale
from repro.experiments.paper_data import TABLE4
from repro.experiments.table4 import render_table4, run_table4
from repro.synth.options import SynthesisOptions

#: Fast rows for the default bench (seconds each at scale 1).
QUICK_NAMES = [
    "3_17", "rd32", "xor5", "4mod5", "graycode6", "graycode10",
    "6one135", "6one0246", "majority3", "ham7", "adder",
]

#: Exact-match expectations at the quick budget: benchmark -> paper's
#: gate count for "ours" in Table IV.  These rows reliably reproduce.
EXACT = {"3_17": 6, "rd32": 4, "graycode6": 5, "graycode10": 9,
         "6one135": 5, "6one0246": 6, "xor5": 4}


def bench_table4(once):
    options = SynthesisOptions(
        greedy_k=3,
        restart_steps=5_000,
        max_steps=round(20_000 * workload_scale()),
        max_gates=70,
        dedupe_states=True,
    )
    names = QUICK_NAMES
    if os.environ.get("REPRO_TABLE4_FULL"):
        names = None  # every Table IV row
    outcomes = once(run_table4, names, options, use_portfolio=False)
    print()
    print(render_table4(outcomes))

    for name, paper_gates in EXACT.items():
        outcome = outcomes[name]
        assert outcome.solved, name
        assert outcome.gate_count <= paper_gates + 1, (
            name, outcome.gate_count, paper_gates
        )

    solved = sum(1 for outcome in outcomes.values() if outcome.solved)
    assert solved >= 0.8 * len(outcomes)

    # Cost sanity: CNOT-only circuits cost exactly their gate count.
    for name in ("graycode6", "graycode10"):
        outcome = outcomes[name]
        assert outcome.quantum_cost == outcome.gate_count == TABLE4[name][2]
